// Elementwise and structural operations on CSR matrices.
//
// These back CTF-style primitives the MFBC code needs (paper §6.1):
//   Tensor::sparsify()  -> filter()
//   elementwise monoid application A ⊕ B -> ewise_union()
//   transposition for the back-propagation step -> transpose()
//   Tensor::slice() -> slice_rows()/slice_cols()
#pragma once

#include <cstddef>
#include <vector>

#include "algebra/concepts.hpp"
#include "sparse/csr.hpp"
#include "support/parallel.hpp"

namespace mfbc::sparse {

/// C = A ⊕ B elementwise over the union of sparsity patterns, combining
/// overlapping entries through monoid M. Entries combining to the identity
/// are dropped.
template <algebra::Monoid M>
Csr<typename M::value_type> ewise_union(const Csr<typename M::value_type>& a,
                                        const Csr<typename M::value_type>& b) {
  using T = typename M::value_type;
  MFBC_CHECK(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
             "ewise_union shape mismatch");
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(a.nrows()) + 1, 0);
  std::vector<vid_t> col;
  std::vector<T> val;
  col.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  val.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (vid_t r = 0; r < a.nrows(); ++r) {
    auto ac = a.row_cols(r), bc = b.row_cols(r);
    auto av = a.row_vals(r), bv = b.row_vals(r);
    std::size_t i = 0, j = 0;
    auto emit = [&](vid_t c, T v) {
      if (!M::is_identity(v)) {
        col.push_back(c);
        val.push_back(std::move(v));
      }
    };
    while (i < ac.size() && j < bc.size()) {
      if (ac[i] < bc[j]) {
        emit(ac[i], av[i]);
        ++i;
      } else if (ac[i] > bc[j]) {
        emit(bc[j], bv[j]);
        ++j;
      } else {
        emit(ac[i], M::combine(av[i], bv[j]));
        ++i;
        ++j;
      }
    }
    for (; i < ac.size(); ++i) emit(ac[i], av[i]);
    for (; j < bc.size(); ++j) emit(bc[j], bv[j]);
    rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(col.size());
  }
  return Csr<T>(a.nrows(), a.ncols(), std::move(rowptr), std::move(col),
                std::move(val));
}

/// Keep only entries satisfying pred(row, col, value). Shape is preserved.
template <typename T, typename Pred>
Csr<T> filter(const Csr<T>& a, Pred pred) {
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(a.nrows()) + 1, 0);
  std::vector<vid_t> col;
  std::vector<T> val;
  for (vid_t r = 0; r < a.nrows(); ++r) {
    auto ac = a.row_cols(r);
    auto av = a.row_vals(r);
    for (std::size_t i = 0; i < ac.size(); ++i) {
      if (pred(r, ac[i], av[i])) {
        col.push_back(ac[i]);
        val.push_back(av[i]);
      }
    }
    rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(col.size());
  }
  return Csr<T>(a.nrows(), a.ncols(), std::move(rowptr), std::move(col),
                std::move(val));
}

/// C = A ∘ B elementwise over the *intersection* of sparsity patterns,
/// combining with fn (the masked/Hadamard product; used e.g. by triangle
/// counting's (A·A) ∘ A).
template <typename TC, typename TA, typename TB, typename Fn>
Csr<TC> ewise_intersect(const Csr<TA>& a, const Csr<TB>& b, Fn fn) {
  MFBC_CHECK(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
             "ewise_intersect shape mismatch");
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(a.nrows()) + 1, 0);
  std::vector<vid_t> col;
  std::vector<TC> val;
  for (vid_t r = 0; r < a.nrows(); ++r) {
    auto ac = a.row_cols(r), bc = b.row_cols(r);
    auto av = a.row_vals(r), bv = b.row_vals(r);
    std::size_t i = 0, j = 0;
    while (i < ac.size() && j < bc.size()) {
      if (ac[i] < bc[j]) {
        ++i;
      } else if (ac[i] > bc[j]) {
        ++j;
      } else {
        col.push_back(ac[i]);
        val.push_back(fn(av[i], bv[j]));
        ++i;
        ++j;
      }
    }
    rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(col.size());
  }
  return Csr<TC>(a.nrows(), a.ncols(), std::move(rowptr), std::move(col),
                 std::move(val));
}

/// Apply fn to every stored value, producing a possibly different value type
/// (CTF's Transform / Function on a single operand).
template <typename U, typename T, typename Fn>
Csr<U> map_values(const Csr<T>& a, Fn fn) {
  std::vector<nnz_t> rowptr(a.rowptr().begin(), a.rowptr().end());
  std::vector<vid_t> col(a.col().begin(), a.col().end());
  std::vector<U> val;
  val.reserve(static_cast<std::size_t>(a.nnz()));
  for (vid_t r = 0; r < a.nrows(); ++r) {
    auto ac = a.row_cols(r);
    auto av = a.row_vals(r);
    for (std::size_t i = 0; i < ac.size(); ++i) {
      val.push_back(fn(r, ac[i], av[i]));
    }
  }
  return Csr<U>(a.nrows(), a.ncols(), std::move(rowptr), std::move(col),
                std::move(val));
}

/// Aᵀ. Column indices of the result are sorted (bucket pass by column).
///
/// Large inputs run the bucket pass chunk-parallel over source-row stripes:
/// per-stripe column counts plus a serial prefix give every (stripe, column)
/// a disjoint output range in serial row order, so the parallel writes land
/// exactly where the serial pass would put them — bit-identical output at
/// every thread count.
template <typename T>
Csr<T> transpose(const Csr<T>& a) {
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(a.ncols()) + 1, 0);
  std::vector<vid_t> col(static_cast<std::size_t>(a.nnz()));
  std::vector<T> val(static_cast<std::size_t>(a.nnz()));
  const int nt = support::num_threads();
  if (support::ThreadPool::in_parallel_region() || nt <= 1 ||
      static_cast<std::size_t>(a.nnz()) < (1u << 15)) {
    for (vid_t c : a.col()) rowptr[static_cast<std::size_t>(c) + 1]++;
    for (std::size_t i = 1; i < rowptr.size(); ++i) rowptr[i] += rowptr[i - 1];
    std::vector<nnz_t> cursor(rowptr.begin(), rowptr.end() - 1);
    for (vid_t r = 0; r < a.nrows(); ++r) {
      auto ac = a.row_cols(r);
      auto av = a.row_vals(r);
      for (std::size_t i = 0; i < ac.size(); ++i) {
        nnz_t at = cursor[static_cast<std::size_t>(ac[i])]++;
        col[static_cast<std::size_t>(at)] = r;
        val[static_cast<std::size_t>(at)] = av[i];
      }
    }
    return Csr<T>(a.ncols(), a.nrows(), std::move(rowptr), std::move(col),
                  std::move(val));
  }
  const std::size_t chunks = static_cast<std::size_t>(nt);
  const std::size_t nr = static_cast<std::size_t>(a.nrows());
  std::vector<vid_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) {
    bounds[c] = static_cast<vid_t>(nr * c / chunks);
  }
  std::vector<std::vector<nnz_t>> cursor(chunks);
  support::parallel_for(chunks, [&](std::size_t c) {
    std::vector<nnz_t> local(static_cast<std::size_t>(a.ncols()), 0);
    for (vid_t r = bounds[c]; r < bounds[c + 1]; ++r) {
      for (vid_t cc : a.row_cols(r)) local[static_cast<std::size_t>(cc)]++;
    }
    cursor[c] = std::move(local);
  });
  // Serial prefix in (column, stripe) order: turns the per-stripe counts
  // into each stripe's starting write position per column and fills rowptr.
  nnz_t base = 0;
  for (std::size_t j = 0; j < static_cast<std::size_t>(a.ncols()); ++j) {
    rowptr[j] = base;
    for (std::size_t c = 0; c < chunks; ++c) {
      const nnz_t count = cursor[c][j];
      cursor[c][j] = base;
      base += count;
    }
  }
  rowptr[static_cast<std::size_t>(a.ncols())] = base;
  support::parallel_for(chunks, [&](std::size_t c) {
    auto& cur = cursor[c];
    for (vid_t r = bounds[c]; r < bounds[c + 1]; ++r) {
      auto ac = a.row_cols(r);
      auto av = a.row_vals(r);
      for (std::size_t i = 0; i < ac.size(); ++i) {
        nnz_t at = cur[static_cast<std::size_t>(ac[i])]++;
        col[static_cast<std::size_t>(at)] = r;
        val[static_cast<std::size_t>(at)] = av[i];
      }
    }
  });
  return Csr<T>(a.ncols(), a.nrows(), std::move(rowptr), std::move(col),
                std::move(val));
}

/// Entries with row index in [begin, end), re-indexed so the slice's row 0 is
/// global row `begin`. Columns are untouched.
template <typename T>
Csr<T> slice_rows(const Csr<T>& a, vid_t begin, vid_t end) {
  MFBC_CHECK(0 <= begin && begin <= end && end <= a.nrows(),
             "row slice out of range");
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(end - begin) + 1, 0);
  const nnz_t base = a.rowptr()[static_cast<std::size_t>(begin)];
  for (vid_t r = begin; r <= end; ++r) {
    if (r > begin) {
      rowptr[static_cast<std::size_t>(r - begin)] =
          a.rowptr()[static_cast<std::size_t>(r)] - base;
    }
  }
  auto cb = a.col().begin() + static_cast<std::ptrdiff_t>(base);
  auto vb = a.val().begin() + static_cast<std::ptrdiff_t>(base);
  nnz_t count = a.rowptr()[static_cast<std::size_t>(end)] - base;
  std::vector<vid_t> col(cb, cb + count);
  std::vector<T> val(vb, vb + count);
  return Csr<T>(end - begin, a.ncols(), std::move(rowptr), std::move(col),
                std::move(val));
}

/// Entries with column index in [begin, end). Column indices and matrix
/// shape are preserved (the slice lives in the original index space).
template <typename T>
Csr<T> slice_cols(const Csr<T>& a, vid_t begin, vid_t end) {
  MFBC_CHECK(0 <= begin && begin <= end && end <= a.ncols(),
             "col slice out of range");
  return filter(a, [begin, end](vid_t, vid_t c, const T&) {
    return c >= begin && c < end;
  });
}

/// Place `a`'s rows at offset `row_offset` inside a taller matrix of
/// `new_nrows` rows (inverse of slice_rows; used when a SUMMA m-slice is
/// accumulated into its destination block).
template <typename T>
Csr<T> embed_rows(const Csr<T>& a, vid_t new_nrows, vid_t row_offset) {
  MFBC_CHECK(row_offset >= 0 && row_offset + a.nrows() <= new_nrows,
             "embed_rows target out of range");
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(new_nrows) + 1, 0);
  for (vid_t r = 0; r < a.nrows(); ++r) {
    rowptr[static_cast<std::size_t>(row_offset + r) + 1] = a.rowptr()[static_cast<std::size_t>(r) + 1];
  }
  for (vid_t r = row_offset + a.nrows(); r < new_nrows; ++r) {
    rowptr[static_cast<std::size_t>(r) + 1] = a.nnz();
  }
  std::vector<vid_t> col(a.col().begin(), a.col().end());
  std::vector<T> val(a.val().begin(), a.val().end());
  return Csr<T>(new_nrows, a.ncols(), std::move(rowptr), std::move(col),
                std::move(val));
}

}  // namespace mfbc::sparse
