#include "core/batch_driver.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/checkpoint.hpp"
#include "dist/spgemm_dist.hpp"
#include "sim/faults.hpp"
#include "support/error.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace mfbc::core {

namespace {

using graph::vid_t;

/// Batch-level rank-failure recovery: verify every base-grid row still has a
/// live λ-checkpoint replica (throws an unrecoverable FaultError otherwise),
/// re-map dead virtual ranks onto survivors, and charge the λ restore and
/// the stationary-operand re-fetch. The run's λ itself needs no data
/// rollback: the failing batch only ever wrote its private scratch vector,
/// which the retry re-zeroes — the charges below model restoring the
/// row-replicated λ segments on the remapped machine.
void recover_from_rank_failure(sim::Sim& sim, const dist::Layout& base,
                               vid_t n, const BatchHooks& hooks,
                               std::span<const int> all_ranks,
                               int batch_index, BatchDriverStats* stats) {
  sim::FaultInjector* fi = sim.faults();
  MFBC_CHECK(fi != nullptr, "rank-failure recovery without fault injection");
  telemetry::Span span("recovery.batch_rollback");
  span.attr("batch", static_cast<std::int64_t>(batch_index));
  telemetry::count("faults.batch_rollbacks");

  // Viability: every base-grid row must retain at least one live replica of
  // its λ-checkpoint segment (evaluated through the pre-remap map — the
  // hosts that held the row when the checkpoint was written).
  for (int i = 0; i < base.pr; ++i) {
    bool row_alive = false;
    for (int j = 0; j < base.pc && !row_alive; ++j) {
      row_alive = !fi->dead(fi->physical(base.rank_at(i, j)));
    }
    if (!row_alive) {
      fi->count_aborted(sim::FaultKind::kRankFailure);
      sim::FaultError dead_row(
          sim::FaultKind::kRankFailure, fi->charge_points(), -1, false,
          "unrecoverable rank failure: every rank of grid row " +
              std::to_string(i) + " is dead, λ checkpoint replicas lost");
      dead_row.set_batch(batch_index);
      throw dead_row;
    }
  }

  // The largest stationary-operand block a dead host carried — sized before
  // the remap, while the dead hosts are still visible through the map.
  double lost_words = 0;
  for (int i = 0; i < base.pr; ++i) {
    for (int j = 0; j < base.pc; ++j) {
      if (!fi->dead(base.rank_at(i, j))) continue;
      lost_words = std::max(lost_words, hooks.lost_block_words(i, j));
    }
  }

  // Re-home dead virtual ranks: spare re-home first, then survivor
  // doubling, then a grid shrink (sim/faults.hpp). The logical grid — and
  // with it every layout, schedule, and floating-point summation order — is
  // unchanged by every branch, so the recovered run stays bit-identical;
  // the degraded machine accrues cost honestly through the new
  // virtual→physical map.
  const sim::RemapOutcome outcome = sim.remap_dead_ranks(batch_index);
  if (stats != nullptr) {
    if (outcome.used_spare) ++stats->spare_rehomes;
    if (outcome.shrunk) ++stats->grid_shrinks;
  }

  {
    auto rs = sim.recovery_scope();
    sim::RecoveryEvent restore;
    restore.kind = sim::RecoveryEvent::Kind::kCheckpointRestore;
    restore.charge_index = fi->charge_points();
    restore.batch = batch_index;
    restore.seconds = sim.ledger().critical().total_seconds();
    fi->record_event(restore);
    // Restore λ from the surviving replica in each row.
    for (int i = 0; i < base.pr; ++i) {
      sim.charge_bcast(base.row_group(i), static_cast<double>(n) / base.pr);
    }
    // Re-fetch the stationary-operand blocks the dead hosts carried
    // (checkpoint restart from the input): one scatter sized by the largest
    // lost block. On the spare path this is the spare's warm-up
    // re-broadcast — cost-identical to the doubling path's re-fetch (same
    // collective, same group, same words), booked under spare.* so the
    // bench's spare-never-charges-more gate can audit it.
    if (lost_words > 0) {
      sim.charge_scatter(all_ranks, lost_words);
      if (outcome.used_spare) {
        telemetry::count("spare.warmup_words", lost_words);
      }
    }
    // A grid shrink moved *every* virtual rank's blocks, not just the dead
    // hosts': charge the full redistribution (one personalized exchange
    // sized by the average per-host resident volume on the shrunken fleet).
    if (outcome.shrunk) {
      double total_words = 0;
      for (int i = 0; i < base.pr; ++i) {
        for (int j = 0; j < base.pc; ++j) {
          total_words += hooks.lost_block_words(i, j);
        }
      }
      const double per_host =
          total_words / static_cast<double>(std::max(1, fi->alive_count()));
      sim.charge_alltoall(all_ranks, per_host);
      telemetry::count("degrade.redistributed_words", total_words);
    }
  }

  hooks.invalidate_caches();

  fi->count_recovered(sim::FaultKind::kRankFailure);
}

}  // namespace

std::vector<vid_t> resolve_sources(vid_t n,
                                   const std::vector<vid_t>& requested) {
  if (requested.empty()) {
    std::vector<vid_t> all(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
    return all;
  }
  // Validate before any distribution work: bad source lists must not cost a
  // single charge, and the rejection is a *named* error (SourceListError) so
  // the serving layer can turn it into a client-level refusal. A duplicate
  // would silently double-count its pair dependencies in λ.
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (vid_t s : requested) {
    if (s < 0 || s >= n) {
      throw SourceListError("invalid source list: id " + std::to_string(s) +
                            " out of range [0, " + std::to_string(n) + ")");
    }
    if (seen[static_cast<std::size_t>(s)] != 0) {
      throw SourceListError(
          "invalid source list: duplicate source id " + std::to_string(s) +
          " (duplicates would double-count pair dependencies)");
    }
    seen[static_cast<std::size_t>(s)] = 1;
  }
  return requested;
}

std::vector<double> run_batched_bc(sim::Sim& sim, const dist::Layout& base,
                                   vid_t n,
                                   const std::vector<vid_t>& sources,
                                   vid_t batch_size, const BatchHooks& hooks,
                                   BatchDriverStats* stats,
                                   const BatchRunOptions& run_opts) {
  MFBC_CHECK(batch_size >= 1, "batch size must be positive");
  MFBC_CHECK(hooks.run_batch && hooks.lost_block_words &&
                 hooks.invalidate_caches,
             "run_batched_bc: every BatchHooks callback must be set");
  MFBC_CHECK(!run_opts.resume || !run_opts.checkpoint_dir.empty(),
             "--resume needs --checkpoint-dir");
  MFBC_CHECK(run_opts.batch_deltas == nullptr || !run_opts.resume,
             "per-batch λ-delta collection is incompatible with --resume: a "
             "resumed run has no deltas for the batches it skipped");
  const std::vector<vid_t> all_sources = resolve_sources(n, sources);
  const int p = sim.nranks();
  std::vector<int> all_ranks(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) all_ranks[static_cast<std::size_t>(r)] = r;

  std::vector<double> lambda(static_cast<std::size_t>(n), 0.0);

  sim::FaultInjector* fi = sim.faults();
  const bool checkpointing = fi != nullptr && fi->checkpoint_enabled();
  const bool durable = !run_opts.checkpoint_dir.empty();
  const std::uint64_t sig =
      durable ? source_signature(n, batch_size, all_sources,
                                 run_opts.graph_sig)
              : 0;
  const int total_batches = static_cast<int>(
      (all_sources.size() + static_cast<std::size_t>(batch_size) - 1) /
      static_cast<std::size_t>(batch_size));
  if (run_opts.batch_deltas != nullptr) {
    run_opts.batch_deltas->assign(static_cast<std::size_t>(total_batches),
                                  {});
  }

  int start_batch = 0;
  if (run_opts.resume) {
    const LambdaCheckpoint ck = load_checkpoint(run_opts.checkpoint_dir);
    MFBC_CHECK(ck.n == static_cast<std::uint64_t>(n),
               "checkpoint resumes a different graph (n mismatch)");
    MFBC_CHECK(ck.source_sig == sig,
               "checkpoint resumes a different run (source/batch signature "
               "mismatch)");
    MFBC_CHECK(ck.batches_done <= static_cast<std::uint64_t>(total_batches),
               "checkpoint claims more batches than this run has");
    lambda = ck.lambda;
    start_batch = static_cast<int>(ck.batches_done);
    if (stats != nullptr) stats->resumed_batches = start_batch;
    telemetry::count("ckpt.resumed_batches",
                     static_cast<double>(start_batch));
    if (fi != nullptr) {
      fi->record_event({sim::RecoveryEvent::Kind::kResume,
                        fi->charge_points(), start_batch, -1, -1,
                        sim.ledger().critical().total_seconds()});
    }
    // Redistribute the restored λ segments to their owning rows — the same
    // collective shape as the in-memory checkpoint restore.
    auto rs = sim.recovery_scope();
    for (int i = 0; i < base.pr; ++i) {
      sim.charge_bcast(base.row_group(i), static_cast<double>(n) / base.pr);
    }
  }

  int batch_index = 0;
  bool stop_requested = false;
  for (std::size_t lo = 0; lo < all_sources.size();
       lo += static_cast<std::size_t>(batch_size)) {
    if (batch_index < start_batch) {
      // Already accumulated into the checkpoint this run resumed from.
      // Replay the batch to the observer with an empty delta (the cumulative
      // checkpoint holds the sum, not the per-batch vectors) so a layered
      // stop rule can re-evaluate its decision at the restore point — and
      // stop the resumed run before it executes a single batch.
      if (run_opts.on_batch) {
        const std::size_t hi_skip = std::min(
            all_sources.size(), lo + static_cast<std::size_t>(batch_size));
        static const std::vector<double> kEmptyDelta;
        if (!run_opts.on_batch(batch_index, hi_skip - lo, kEmptyDelta)) {
          stop_requested = true;
        }
      }
      ++batch_index;
      if (stop_requested) break;
      continue;
    }
    const std::size_t hi = std::min(
        all_sources.size(), lo + static_cast<std::size_t>(batch_size));
    const std::vector<vid_t> batch_sources(
        all_sources.begin() + static_cast<std::ptrdiff_t>(lo),
        all_sources.begin() + static_cast<std::ptrdiff_t>(hi));

    std::vector<double> batch_lambda;
    int attempts = 0;
    bool need_recover = false;
    for (;;) {
      try {
        // Recovery runs at the top of the retry iteration (not in the catch
        // handler) so a rank that dies *during* recovery's own restore
        // charges re-enters this same policy instead of escaping.
        if (need_recover) {
          recover_from_rank_failure(sim, base, n, hooks, all_ranks,
                                    batch_index, stats);
          need_recover = false;
        }
        // Checkpoint λ at the batch boundary: each base-grid row replicates
        // its segment across the row (one allgather per row), so any single
        // survivor of a row can restore it after a rank failure. Re-charged
        // after a failed attempt — the remapped machine re-replicates the
        // restored segments.
        if (checkpointing) {
          telemetry::Span ckpt_span("recovery.checkpoint");
          auto rs = sim.recovery_scope();
          for (int i = 0; i < base.pr; ++i) {
            sim.charge_allgather(base.row_group(i),
                                 static_cast<double>(n) / base.pr);
          }
        }
        // Each batch accumulates into a private zeroed scratch vector; the
        // fold below adds it into λ with exactly one add per vertex per
        // batch. Two things fall out: rollback is re-zeroing (λ is never
        // dirtied by a failed attempt), and the per-batch deltas are
        // independent — summing them in batch order reproduces λ bitwise,
        // which is the splice contract incremental recomputation
        // (docs/serving.md) is built on.
        batch_lambda.assign(static_cast<std::size_t>(n), 0.0);
        hooks.run_batch(batch_sources, batch_lambda, all_ranks, batch_index);
        // Nothing dirty may outlive a batch: repair corruption from frontier
        // exchanges that no ABFT pass covered.
        dist::abft_repair_pending(sim);
        if (durable) {
          // Charge collecting the row-replicated segments to the checkpoint
          // writer *before* the fold below commits this batch into λ. The
          // gather is a fault charge point; placing it after the fold would
          // let a recoverable rank failure re-run an already-folded batch
          // and double-count its delta. The fold itself is pure host
          // arithmetic — no charges — so this order shift moves no charge
          // index of any existing fault schedule.
          auto rs = sim.recovery_scope();
          sim.charge_gather(all_ranks, static_cast<double>(n));
        }
        for (std::size_t v = 0; v < lambda.size(); ++v) {
          lambda[v] += batch_lambda[v];
        }
        // The batch is committed: every fault charge point is behind us, λ
        // holds the fold. Observe exactly once per committed batch — before
        // the durable save, so the observer's own persisted state (the
        // adaptive sampler's statistics sidecar) can only ever *lead* the λ
        // checkpoint, a crash window the resume path reconciles.
        if (run_opts.on_batch &&
            !run_opts.on_batch(batch_index, batch_sources.size(),
                               batch_lambda)) {
          stop_requested = true;
          telemetry::count("driver.early_stops");
        }
        if (run_opts.batch_deltas != nullptr) {
          (*run_opts.batch_deltas)[static_cast<std::size_t>(batch_index)] =
              std::move(batch_lambda);
        }
        if (durable) {
          // Persist λ after every complete batch (core/checkpoint.hpp).
          LambdaCheckpoint ck;
          ck.n = static_cast<std::uint64_t>(n);
          ck.batches_done = static_cast<std::uint64_t>(batch_index + 1);
          ck.source_sig = sig;
          ck.lambda = lambda;
          save_checkpoint(run_opts.checkpoint_dir, ck);
        }
        break;
      } catch (const sim::FaultError& e) {
        // A failure inside an overlap window leaves the window open; the
        // batch it braced is being rolled back, so its accrued overlap
        // credit is forfeited — the retry re-earns (or doesn't) its own.
        sim.overlap_abandon_all();
        if (e.kind() != sim::FaultKind::kRankFailure || !e.recoverable()) {
          // Annotate the failing batch on the way out so the CLI can name
          // it in the unrecoverable diagnostic.
          sim::FaultError out = e;
          if (out.batch() < 0) out.set_batch(batch_index);
          throw out;
        }
        MFBC_CHECK(checkpointing, "rank failure without checkpointing");
        ++attempts;
        if (stats != nullptr) ++stats->batch_retries;
        if (attempts > fi->spec().max_batch_retries) {
          fi->count_aborted(sim::FaultKind::kRankFailure);
          sim::FaultError limit(
              e.kind(), e.charge_index(), e.rank(), false,
              std::string(e.what()) + " (batch retry limit of " +
                  std::to_string(fi->spec().max_batch_retries) +
                  " exceeded)");
          limit.set_batch(batch_index);
          throw limit;
        }
        need_recover = true;
      }
    }
    ++batch_index;
    if (stop_requested) break;
  }

  // The per-rank λ partials are summed with one reduction over all ranks.
  sim.charge_reduce(all_ranks, static_cast<double>(n));
  return lambda;
}

}  // namespace mfbc::core
