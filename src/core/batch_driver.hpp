// Shared batched-BC execution driver (docs/fault_tolerance.md).
//
// Both distributed BC engines — core::DistMfbc and baseline::CombBlasBc —
// process sources in batches and accumulate a per-vertex λ vector. Batching,
// λ-checkpointing at batch boundaries, the rank-failure retry/rollback loop,
// the post-batch ABFT repair sweep, and the final λ reduction are identical
// policy; only the per-batch algorithm differs. run_batched_bc owns the
// shared policy and calls back into the engine through BatchHooks, so every
// recovery guarantee (bit-identical λ for every recoverable schedule, at
// every thread count) holds for both engines by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "dist/procgrid.hpp"
#include "graph/graph.hpp"
#include "sim/comm.hpp"
#include "support/error.hpp"

namespace mfbc::core {

/// Named rejection of an invalid requested source list (out-of-range or
/// duplicate ids). Thrown by resolve_sources — and therefore by every
/// engine's run() — *before* any distribution work, so a bad list never
/// costs a single simulated charge. A duplicate source would silently
/// double-count its pair dependencies in λ; naming the error lets the
/// serving layer map it to a client-level rejection instead of a crash.
class SourceListError : public mfbc::Error {
 public:
  explicit SourceListError(const std::string& what) : mfbc::Error(what) {}
};

/// Engine-specific callbacks consumed by run_batched_bc. All three must be
/// set; the driver checks and throws mfbc::Error otherwise.
struct BatchHooks {
  /// One full forward + backward pass over `batch_sources`, accumulating
  /// partial centrality into `lambda`. The driver hands in a zeroed
  /// per-batch scratch vector and folds it into the run's λ itself (one add
  /// per vertex per batch), so each batch's contribution is an independent
  /// delta the incremental-recomputation layer can splice
  /// (docs/serving.md). May throw sim::FaultError out of the charging
  /// layer; the driver owns rollback and re-runs the batch.
  std::function<void(const std::vector<graph::vid_t>& batch_sources,
                     std::vector<double>& lambda,
                     std::span<const int> all_ranks, int batch_index)>
      run_batch;
  /// Wire words of the stationary operand data (adjacency + transpose) that
  /// die with base-grid block (i, j) — sizes the post-failure re-fetch.
  std::function<double(int i, int j)> lost_block_words;
  /// Drop plan-home operand caches after a remap: replicas on dead ranks are
  /// gone, the next multiply must re-map (and re-charge) them.
  std::function<void()> invalidate_caches;
};

struct BatchDriverStats {
  int batch_retries = 0;    ///< batches re-run after a rank failure
  int resumed_batches = 0;  ///< batches skipped by a --resume restart
  int spare_rehomes = 0;    ///< recoveries served from the spare pool
  int grid_shrinks = 0;     ///< recoveries that shrank the physical grid
};

/// Durable-checkpoint policy for one driver run (core/checkpoint.hpp).
struct BatchRunOptions {
  /// Directory for `mfbc.ckpt` files; empty disables durable checkpoints.
  /// When set, λ is persisted after every completed batch whether or not a
  /// fault injector is installed — durability guards against fatal
  /// failures, not just recoverable ones.
  std::string checkpoint_dir;
  /// Load checkpoint_dir's file and restart after its last complete batch.
  /// The file is fully verified first; a checkpoint whose shape signature
  /// (graph size, batch size, source list) disagrees with this run is
  /// refused. Requires checkpoint_dir.
  bool resume = false;
  /// Structural signature of the graph this run computes on
  /// (graph/mutate.hpp). When nonzero it is folded into the checkpoint's
  /// shape signature, so a checkpoint written against one graph version can
  /// never resume a run on another. 0 keeps pre-versioning checkpoints
  /// resumable.
  std::uint64_t graph_sig = 0;
  /// When set, receives one λ-delta vector per batch (resized to the batch
  /// count; each entry length n): exactly the scratch vector the driver
  /// folded for that batch. Summing the deltas in batch order reproduces
  /// the returned λ bitwise — the splice contract incremental
  /// recomputation is built on. Incompatible with resume (a resumed run
  /// has no deltas for the batches it skipped; the driver throws).
  std::vector<std::vector<double>>* batch_deltas = nullptr;
  /// Per-batch observer with an early-stop vote. Called exactly once per
  /// *committed* batch (λ folded, every fault charge point of the batch
  /// behind us — a retried attempt is never observed), with the batch's
  /// λ-delta: the same scratch vector batch_deltas would receive. Returning
  /// false stops the run after this batch: remaining batches are skipped,
  /// the final λ reduction is still charged, and a durable checkpoint —
  /// written after the observer, so a crash inside the observer costs at
  /// most a re-observation of the same committed statistics — stays valid
  /// for a later --resume continuation of the same full source list.
  ///
  /// Batches skipped by --resume are *replayed* to the observer in order
  /// with an empty delta (the cumulative checkpoint holds their sum, not
  /// the per-batch vectors), so a layered stop rule that persisted its own
  /// state alongside λ (mfbc/adaptive.hpp) can re-evaluate its decision at
  /// the restore point and stop a resumed run before it executes anything.
  using BatchObserver = std::function<bool(
      int batch_index, std::size_t batch_source_count,
      const std::vector<double>& batch_delta)>;
  BatchObserver on_batch;
};

/// Validate a requested source list (ids in [0, n), duplicate-free; throws
/// SourceListError before any distribution work otherwise) or default it to
/// all n vertices when empty.
std::vector<graph::vid_t> resolve_sources(
    graph::vid_t n, const std::vector<graph::vid_t>& requested);

/// Drive batched BC over `sources` on `sim`, calling hooks.run_batch once
/// per batch (re-running it after recoverable rank failures) and charging
/// the final λ reduction over all ranks. `base` is the engine's base grid —
/// the layout whose rows replicate the λ checkpoint. Returns the accumulated
/// λ vector. Unrecoverable schedules throw sim::FaultError.
std::vector<double> run_batched_bc(sim::Sim& sim, const dist::Layout& base,
                                   graph::vid_t n,
                                   const std::vector<graph::vid_t>& sources,
                                   graph::vid_t batch_size,
                                   const BatchHooks& hooks,
                                   BatchDriverStats* stats = nullptr,
                                   const BatchRunOptions& run_opts = {});

}  // namespace mfbc::core
