// Shared batched-BC execution driver (docs/fault_tolerance.md).
//
// Both distributed BC engines — core::DistMfbc and baseline::CombBlasBc —
// process sources in batches and accumulate a per-vertex λ vector. Batching,
// λ-checkpointing at batch boundaries, the rank-failure retry/rollback loop,
// the post-batch ABFT repair sweep, and the final λ reduction are identical
// policy; only the per-batch algorithm differs. run_batched_bc owns the
// shared policy and calls back into the engine through BatchHooks, so every
// recovery guarantee (bit-identical λ for every recoverable schedule, at
// every thread count) holds for both engines by construction.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "dist/procgrid.hpp"
#include "graph/graph.hpp"
#include "sim/comm.hpp"

namespace mfbc::core {

/// Engine-specific callbacks consumed by run_batched_bc. All three must be
/// set; the driver checks and throws mfbc::Error otherwise.
struct BatchHooks {
  /// One full forward + backward pass over `batch_sources`, accumulating
  /// partial centrality into `lambda`. May throw sim::FaultError out of the
  /// charging layer; the driver owns rollback and re-runs the batch.
  std::function<void(const std::vector<graph::vid_t>& batch_sources,
                     std::vector<double>& lambda,
                     std::span<const int> all_ranks, int batch_index)>
      run_batch;
  /// Wire words of the stationary operand data (adjacency + transpose) that
  /// die with base-grid block (i, j) — sizes the post-failure re-fetch.
  std::function<double(int i, int j)> lost_block_words;
  /// Drop plan-home operand caches after a remap: replicas on dead ranks are
  /// gone, the next multiply must re-map (and re-charge) them.
  std::function<void()> invalidate_caches;
};

struct BatchDriverStats {
  int batch_retries = 0;    ///< batches re-run after a rank failure
  int resumed_batches = 0;  ///< batches skipped by a --resume restart
  int spare_rehomes = 0;    ///< recoveries served from the spare pool
  int grid_shrinks = 0;     ///< recoveries that shrank the physical grid
};

/// Durable-checkpoint policy for one driver run (core/checkpoint.hpp).
struct BatchRunOptions {
  /// Directory for `mfbc.ckpt` files; empty disables durable checkpoints.
  /// When set, λ is persisted after every completed batch whether or not a
  /// fault injector is installed — durability guards against fatal
  /// failures, not just recoverable ones.
  std::string checkpoint_dir;
  /// Load checkpoint_dir's file and restart after its last complete batch.
  /// The file is fully verified first; a checkpoint whose shape signature
  /// (graph size, batch size, source list) disagrees with this run is
  /// refused. Requires checkpoint_dir.
  bool resume = false;
};

/// Validate a requested source list (ids in [0, n), duplicate-free; throws
/// mfbc::Error before any distribution work otherwise) or default it to all
/// n vertices when empty.
std::vector<graph::vid_t> resolve_sources(
    graph::vid_t n, const std::vector<graph::vid_t>& requested);

/// Drive batched BC over `sources` on `sim`, calling hooks.run_batch once
/// per batch (re-running it after recoverable rank failures) and charging
/// the final λ reduction over all ranks. `base` is the engine's base grid —
/// the layout whose rows replicate the λ checkpoint. Returns the accumulated
/// λ vector. Unrecoverable schedules throw sim::FaultError.
std::vector<double> run_batched_bc(sim::Sim& sim, const dist::Layout& base,
                                   graph::vid_t n,
                                   const std::vector<graph::vid_t>& sources,
                                   graph::vid_t batch_size,
                                   const BatchHooks& hooks,
                                   BatchDriverStats* stats = nullptr,
                                   const BatchRunOptions& run_opts = {});

}  // namespace mfbc::core
