// Durable λ batch checkpoints (docs/fault_tolerance.md "Elastic recovery").
//
// The batch driver already replicates λ across each base-grid row at every
// batch boundary so a rank failure rolls back one batch, not the whole run.
// That replica lives in simulated memory: a *fatal* failure (an
// unrecoverable schedule, a killed process) still loses everything. This
// module persists the same checkpoint as a versioned file so a rerun with
// --resume restarts from the last complete batch.
//
// File format `mfbc.ckpt.v1` (little-endian, the only byte order the
// simulator targets):
//
//   offset  size              field
//   0       13                magic line "mfbc.ckpt.v1\n"
//   13      8                 u64 n            (vertex count)
//   21      8                 u64 batches_done (complete batches in λ)
//   29      8                 u64 source_sig   (FNV-1a over n, batch size,
//                                               and the resolved source list)
//   37      8                 u64 lambda_count (== n)
//   45      8·lambda_count    λ doubles, raw bit patterns
//   ...     8                 u64 FNV-1a checksum over all preceding bytes
//
// Raw double bit patterns make a resumed run bit-identical to the
// uninterrupted one by construction. Loading verifies, in order: the magic
// (version mismatch), the declared sizes against the file size (truncation),
// and the checksum (corruption) — a bad file is always reported via
// mfbc::Error, never silently loaded. Writes go to a temp file in the same
// directory followed by a rename, so a crash mid-write leaves the previous
// checkpoint intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mfbc::core {

inline constexpr const char kCheckpointMagic[] = "mfbc.ckpt.v1\n";

struct LambdaCheckpoint {
  std::uint64_t n = 0;
  std::uint64_t batches_done = 0;
  std::uint64_t source_sig = 0;
  std::vector<double> lambda;
};

/// FNV-1a 64-bit over a byte range (the format's checksum primitive).
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0xCBF29CE484222325ull);

/// Signature binding a checkpoint to its run shape: n, batch size, the
/// resolved source list and — when nonzero — the graph's structural
/// signature (graph/mutate.hpp). A checkpoint from a different graph
/// version, batching, or source set must never resume a run it does not
/// describe. graph_sig = 0 (the default) reproduces the pre-versioning
/// signature, so old checkpoints stay resumable.
std::uint64_t source_signature(graph::vid_t n, graph::vid_t batch_size,
                               const std::vector<graph::vid_t>& sources,
                               std::uint64_t graph_sig = 0);

/// The checkpoint file inside `dir` (a fixed name: one run per directory).
std::string checkpoint_path(const std::string& dir);

/// Atomically write `ck` as `checkpoint_path(dir)` (temp file + rename).
/// Throws mfbc::Error on I/O failure.
void save_checkpoint(const std::string& dir, const LambdaCheckpoint& ck);

/// Load and fully verify a checkpoint. Throws mfbc::Error naming the file
/// and the defect (missing, version mismatch, truncated, checksum mismatch).
LambdaCheckpoint load_checkpoint(const std::string& dir);

}  // namespace mfbc::core
