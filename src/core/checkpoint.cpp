#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "telemetry/registry.hpp"

namespace mfbc::core {

namespace {

constexpr std::size_t kMagicBytes = sizeof(kCheckpointMagic) - 1;  // no NUL

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t get_u64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

[[noreturn]] void bad_file(const std::string& path, const std::string& why) {
  throw ::mfbc::Error("checkpoint " + path + ": " + why);
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  return support::fnv1a(data, bytes, seed);
}

std::uint64_t source_signature(graph::vid_t n, graph::vid_t batch_size,
                               const std::vector<graph::vid_t>& sources,
                               std::uint64_t graph_sig) {
  std::uint64_t h = fnv1a(&n, sizeof(n));
  h = fnv1a(&batch_size, sizeof(batch_size), h);
  for (graph::vid_t s : sources) h = fnv1a(&s, sizeof(s), h);
  // Folded only when the caller binds a graph version: the default keeps
  // every pre-versioning checkpoint resumable (signature unchanged).
  if (graph_sig != 0) h = fnv1a(&graph_sig, sizeof(graph_sig), h);
  return h;
}

std::string checkpoint_path(const std::string& dir) {
  if (dir.empty()) return "mfbc.ckpt";
  return dir.back() == '/' ? dir + "mfbc.ckpt" : dir + "/mfbc.ckpt";
}

void save_checkpoint(const std::string& dir, const LambdaCheckpoint& ck) {
  MFBC_CHECK(ck.lambda.size() == ck.n,
             "checkpoint: lambda length disagrees with n");
  std::string bytes;
  bytes.reserve(kMagicBytes + 5 * 8 + ck.lambda.size() * 8);
  bytes.append(kCheckpointMagic, kMagicBytes);
  put_u64(bytes, ck.n);
  put_u64(bytes, ck.batches_done);
  put_u64(bytes, ck.source_sig);
  put_u64(bytes, static_cast<std::uint64_t>(ck.lambda.size()));
  for (double v : ck.lambda) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bytes, bits);
  }
  put_u64(bytes, fnv1a(bytes.data(), bytes.size()));

  const std::string path = checkpoint_path(dir);
  const std::string tmp = path + ".tmp";
  if (!dir.empty()) {
    // A missing directory is a config choice, not a defect: create it so
    // --checkpoint-dir works on a fresh path (mirrors mkdir -p).
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) bad_file(tmp, "cannot open for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) bad_file(tmp, "write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    bad_file(path, "rename from temp file failed");
  }
  telemetry::count("ckpt.writes");
  telemetry::count("ckpt.bytes", static_cast<double>(bytes.size()));
}

LambdaCheckpoint load_checkpoint(const std::string& dir) {
  const std::string path = checkpoint_path(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) bad_file(path, "cannot open (no checkpoint to resume from?)");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kMagicBytes ||
      std::memcmp(bytes.data(), kCheckpointMagic, kMagicBytes) != 0) {
    // Distinguish a future/other version from arbitrary junk: both are
    // refused, but the version case tells the user which tool to reach for.
    if (bytes.compare(0, 10, "mfbc.ckpt.") == 0) {
      const std::size_t nl = bytes.find('\n');
      bad_file(path, "version mismatch: file is '" +
                         bytes.substr(0, nl == std::string::npos
                                             ? std::min<std::size_t>(
                                                   bytes.size(), 16)
                                             : nl) +
                         "', this build reads 'mfbc.ckpt.v1'");
    }
    bad_file(path, "not a checkpoint file (bad magic)");
  }
  const std::size_t header = kMagicBytes + 4 * 8;
  if (bytes.size() < header + 8) bad_file(path, "truncated (header cut off)");
  LambdaCheckpoint ck;
  ck.n = get_u64(bytes, kMagicBytes);
  ck.batches_done = get_u64(bytes, kMagicBytes + 8);
  ck.source_sig = get_u64(bytes, kMagicBytes + 16);
  const std::uint64_t count = get_u64(bytes, kMagicBytes + 24);
  if (count != ck.n) bad_file(path, "corrupt header: lambda count != n");
  const std::size_t expect = header + count * 8 + 8;
  if (bytes.size() != expect) {
    bad_file(path, "truncated: " + std::to_string(bytes.size()) +
                       " bytes, expected " + std::to_string(expect));
  }
  const std::uint64_t stored = get_u64(bytes, bytes.size() - 8);
  const std::uint64_t computed = fnv1a(bytes.data(), bytes.size() - 8);
  if (stored != computed) {
    bad_file(path, "checksum mismatch (corrupt): stored " +
                       std::to_string(stored) + ", computed " +
                       std::to_string(computed));
  }
  ck.lambda.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t bits = get_u64(bytes, header + i * 8);
    std::memcpy(&ck.lambda[i], &bits, sizeof(double));
  }
  telemetry::count("ckpt.restores");
  return ck;
}

}  // namespace mfbc::core
