// Sequential MFBC: Algorithms 1–3 of the paper executed on one rank.
//
// This is both the reference implementation the distributed code is verified
// against and a usable single-node BC solver. The structure mirrors the
// paper exactly — frontier relaxations are generalized sparse matrix
// products over the multpath/centpath monoids — with two implementation
// notes:
//
//   * The accumulated matrices T and Z are held densely per batch
//     (nb×n entries), matching the paper's memory bound O(n·nb/p) per batch;
//     only the frontiers are sparse.
//   * Entries (s, source(s)) are dropped from T and the frontiers. The paper
//     leaves T(s,s) at its (∞,1) initialization conceptually, but relaxation
//     over a graph with cycles would write closed-walk weights into it; such
//     walks never affect other vertices' shortest paths (all weights are
//     positive), and δ(s,s) is excluded from λ by definition, so dropping
//     the diagonal is the faithful-and-safe reading of Algorithm 3.
#pragma once

#include <span>
#include <vector>

#include "algebra/centpath.hpp"
#include "algebra/multpath.hpp"
#include "graph/graph.hpp"

namespace mfbc::core {

using algebra::Multiplicity;
using algebra::Weight;
using graph::Graph;
using graph::vid_t;
using sparse::nnz_t;

/// The result matrix T of MFBF for one batch: distances and shortest-path
/// multiplicities from each of the nb sources, stored densely row-major
/// (s·n + v). Unreached pairs hold (∞, 0).
struct PathMatrix {
  vid_t nb = 0;
  vid_t n = 0;
  std::vector<vid_t> sources;
  std::vector<Weight> dist;
  std::vector<Multiplicity> mult;

  Weight d(vid_t s, vid_t v) const {
    return dist[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
  }
  Multiplicity m(vid_t s, vid_t v) const {
    return mult[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
  }
};

/// Partial centrality factors ζ(s,v) for one batch, dense row-major.
struct FactorMatrix {
  vid_t nb = 0;
  vid_t n = 0;
  std::vector<double> zeta;

  double z(vid_t s, vid_t v) const {
    return zeta[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
  }
};

/// Per-phase frontier statistics (drives the §5.3 cost discussion and the
/// weighted-graph slowdown analysis of §7.2).
struct FrontierTrace {
  std::vector<nnz_t> frontier_nnz;  ///< nnz(F_i) per iteration
  std::vector<nnz_t> product_nnz;   ///< nnz(G_i) per iteration
  nnz_t total_ops = 0;              ///< Σ ops of the generalized products
  int iterations() const { return static_cast<int>(frontier_nnz.size()); }
};

/// Algorithm 1 (MFBF): shortest distances and multiplicities from `sources`.
PathMatrix mfbf(const Graph& g, std::span<const vid_t> sources,
                FrontierTrace* trace = nullptr);

/// Algorithm 2 (MFBr): partial centrality factors for a completed T.
/// `at` must be the transpose of g's adjacency matrix (callers typically
/// compute it once per graph and reuse it across batches).
FactorMatrix mfbr(const Graph& g, const sparse::Csr<Weight>& at,
                  const PathMatrix& t, FrontierTrace* trace = nullptr);

struct MfbcOptions {
  vid_t batch_size = 64;
  /// If non-empty, compute partial (approximate) BC from these sources only;
  /// otherwise all n vertices are sources (exact BC).
  std::vector<vid_t> sources;
};

struct MfbcStats {
  FrontierTrace forward;   ///< accumulated over batches
  FrontierTrace backward;
  int batches = 0;
};

/// Algorithm 3 (MFBC): betweenness centrality λ for the whole graph,
/// processed in batches of `batch_size` sources.
std::vector<double> mfbc(const Graph& g, const MfbcOptions& opts = {},
                         MfbcStats* stats = nullptr);

}  // namespace mfbc::core
