// Approximate betweenness centrality by pivot sampling.
//
// Exact BC costs a full n-source sweep; the standard practice on large
// graphs — and the motivation behind the paper's batched design — is to
// accumulate dependencies from a sample of pivot sources. Two estimators:
//
//   * approx_bc: k uniformly sampled pivots, scores scaled by n/k — the
//     unbiased plug-in estimator (each δ(s,·) has expectation λ(·)/n over a
//     uniform source).
//   * adaptive_bc_vertex: Bader, Kintali, Madduri, Mihail's adaptive
//     sampling [4] for a single vertex of interest: keep sampling sources
//     until the accumulated dependency exceeds α·n, then scale by n/k.
//     High-centrality vertices stop after very few samples.
//
// Both run on the MFBC batch machinery, so the pivots are processed
// batch-at-a-time exactly like exact runs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mfbc/mfbc_seq.hpp"

namespace mfbc::core {

struct ApproxBcResult {
  std::vector<double> bc;  ///< scaled estimates (comparable to exact λ)
  vid_t pivots_used = 0;
};

/// Uniform pivot estimator with k pivots (k clamped to n). Deterministic in
/// `seed`; pivots are sampled without replacement.
ApproxBcResult approx_bc(const graph::Graph& g, vid_t num_pivots,
                         std::uint64_t seed, vid_t batch_size = 64);

struct AdaptiveOptions {
  double alpha = 5.0;       ///< stop once Σ δ(s,v) ≥ alpha·n
  vid_t max_samples = 0;    ///< 0 = up to n samples
  vid_t batch_size = 16;    ///< sources are drawn and solved in batches
  std::uint64_t seed = 1;
};

struct AdaptiveBcResult {
  double estimate = 0;      ///< estimated λ(v)
  vid_t samples_used = 0;
};

/// Adaptive-sampling estimate of one vertex's centrality [4].
AdaptiveBcResult adaptive_bc_vertex(const graph::Graph& g, vid_t v,
                                    const AdaptiveOptions& opts = {});

}  // namespace mfbc::core
