#include "mfbc/ranking.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace mfbc::core {

std::vector<RankedVertex> top_k(const std::vector<double>& scores,
                                std::size_t k) {
  k = std::min(k, scores.size());
  std::vector<RankedVertex> all(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    all[i] = {i, scores[i]};
  }
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const RankedVertex& a, const RankedVertex& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.vertex < b.vertex;
                    });
  all.resize(k);
  return all;
}

double top_k_overlap(const std::vector<double>& a,
                     const std::vector<double>& b, std::size_t k) {
  MFBC_CHECK(a.size() == b.size(), "score vectors must have equal length");
  MFBC_CHECK(k >= 1, "k must be positive");
  k = std::min(k, a.size());
  auto ta = top_k(a, k);
  auto tb = top_k(b, k);
  std::vector<std::size_t> va, vb;
  for (const auto& r : ta) va.push_back(r.vertex);
  for (const auto& r : tb) vb.push_back(r.vertex);
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  std::vector<std::size_t> both;
  std::set_intersection(va.begin(), va.end(), vb.begin(), vb.end(),
                        std::back_inserter(both));
  return static_cast<double>(both.size()) / static_cast<double>(k);
}

}  // namespace mfbc::core
