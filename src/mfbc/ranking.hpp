// Small ranking utilities shared by the examples, the CLI, and downstream
// users: top-k selection and rank-overlap diagnostics for comparing
// approximate against exact centrality orderings.
#pragma once

#include <cstddef>
#include <vector>

namespace mfbc::core {

struct RankedVertex {
  std::size_t vertex = 0;
  double score = 0;
};

/// The k highest-scoring vertices, in descending score order (ties broken
/// by vertex id for determinism). k is clamped to the score count.
std::vector<RankedVertex> top_k(const std::vector<double>& scores,
                                std::size_t k);

/// |top-k(a) ∩ top-k(b)| / k — the overlap statistic used to judge pivot
/// sampling quality (1.0 = identical top-k sets).
double top_k_overlap(const std::vector<double>& a,
                     const std::vector<double>& b, std::size_t k);

}  // namespace mfbc::core
