#include "mfbc/mfbc_seq.hpp"

#include <algorithm>

#include "sparse/ops.hpp"
#include "sparse/spgemm.hpp"
#include "support/error.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace mfbc::core {

namespace {

using algebra::BellmanFordAction;
using algebra::BrandesAction;
using algebra::Centpath;
using algebra::CentpathMonoid;
using algebra::kInfWeight;
using algebra::Multpath;
using algebra::MultpathMonoid;
using sparse::Csr;

/// Incremental row-major CSR assembly for frontiers (entries must arrive in
/// row order with sorted columns, which the update sweeps guarantee).
template <typename T>
class FrontierBuilder {
 public:
  FrontierBuilder(vid_t nrows, vid_t ncols) : nrows_(nrows), ncols_(ncols) {
    rowptr_.assign(static_cast<std::size_t>(nrows) + 1, 0);
  }

  void push(vid_t r, vid_t c, T v) {
    MFBC_DCHECK(r >= row_, "frontier entries must arrive in row order");
    row_ = r;
    rowptr_[static_cast<std::size_t>(r) + 1]++;
    col_.push_back(c);
    val_.push_back(std::move(v));
  }

  Csr<T> build() {
    for (std::size_t i = 1; i < rowptr_.size(); ++i) {
      rowptr_[i] += rowptr_[i - 1];
    }
    return Csr<T>(nrows_, ncols_, std::move(rowptr_), std::move(col_),
                  std::move(val_));
  }

 private:
  vid_t nrows_, ncols_;
  vid_t row_ = 0;
  std::vector<sparse::nnz_t> rowptr_;
  std::vector<vid_t> col_;
  std::vector<T> val_;
};

std::size_t flat(vid_t s, vid_t n, vid_t v) {
  return static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(v);
}

}  // namespace

PathMatrix mfbf(const Graph& g, std::span<const vid_t> sources,
                FrontierTrace* trace) {
  const vid_t n = g.n();
  const auto nb = static_cast<vid_t>(sources.size());
  telemetry::Span phase_span("mfbc.mfbf");
  phase_span.attr("nb", static_cast<std::int64_t>(nb));
  PathMatrix t;
  t.nb = nb;
  t.n = n;
  t.sources.assign(sources.begin(), sources.end());
  t.dist.assign(static_cast<std::size_t>(nb) * static_cast<std::size_t>(n),
                kInfWeight);
  t.mult.assign(static_cast<std::size_t>(nb) * static_cast<std::size_t>(n), 0.0);

  // Line 1–2 of Algorithm 1: T(s,v) := (A(s̄(s),v), 1), frontier := T.
  FrontierBuilder<Multpath> init(nb, n);
  for (vid_t s = 0; s < nb; ++s) {
    const vid_t src = sources[static_cast<std::size_t>(s)];
    MFBC_CHECK(src >= 0 && src < n, "source vertex out of range");
    auto cols = g.adj().row_cols(src);
    auto vals = g.adj().row_vals(src);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      t.dist[flat(s, n, cols[i])] = vals[i];
      t.mult[flat(s, n, cols[i])] = 1.0;
      init.push(s, cols[i], Multpath{vals[i], 1.0});
    }
  }
  Csr<Multpath> frontier = init.build();

  // Lines 3–7: relax the maximal frontier until no path information changes.
  while (frontier.nnz() > 0) {
    telemetry::Span iter_span("mfbc.mfbf.multiply");
    iter_span.attr("frontier_nnz", static_cast<std::int64_t>(frontier.nnz()));
    telemetry::observe("mfbc.seq.forward.frontier_nnz",
                       static_cast<double>(frontier.nnz()));
    sparse::SpgemmStats st;
    Csr<Multpath> product = sparse::spgemm<MultpathMonoid>(
        frontier, g.adj(), BellmanFordAction{}, &st);
    if (trace != nullptr) {
      trace->frontier_nnz.push_back(frontier.nnz());
      trace->product_nnz.push_back(product.nnz());
      trace->total_ops += st.ops;
    }
    FrontierBuilder<Multpath> next(nb, n);
    for (vid_t s = 0; s < nb; ++s) {
      const vid_t src = t.sources[static_cast<std::size_t>(s)];
      auto cols = product.row_cols(s);
      auto vals = product.row_vals(s);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const vid_t v = cols[i];
        if (v == src) continue;  // never relax back into the source
        const Multpath& mp = vals[i];
        const std::size_t at = flat(s, n, v);
        if (mp.w < t.dist[at]) {
          // strictly better path set replaces T (line 5's ⊕)
          t.dist[at] = mp.w;
          t.mult[at] = mp.m;
          next.push(s, v, mp);
        } else if (mp.w == t.dist[at]) {
          // equal-weight paths of one more edge: accumulate multiplicities;
          // the frontier carries only the *new* paths (line 6 keeps entries
          // whose weight is not worse and multiplicity nonzero).
          t.mult[at] += mp.m;
          next.push(s, v, Multpath{mp.w, mp.m});
        }
        // mp.w > t.dist[at]: discarded, line 6 sets it to (∞, 0)
      }
    }
    frontier = next.build();
  }
  return t;
}

FactorMatrix mfbr(const Graph& g, const sparse::Csr<Weight>& at,
                  const PathMatrix& t, FrontierTrace* trace) {
  const vid_t n = g.n();
  const vid_t nb = t.nb;
  MFBC_CHECK(at.nrows() == n && at.ncols() == n,
             "transpose adjacency has wrong shape");
  telemetry::Span phase_span("mfbc.mfbr");
  phase_span.attr("nb", static_cast<std::int64_t>(nb));
  FactorMatrix z;
  z.nb = nb;
  z.n = n;
  z.zeta.assign(static_cast<std::size_t>(nb) * static_cast<std::size_t>(n), 0.0);

  // Lines 1–2 of Algorithm 2: count each vertex's successors in the
  // shortest-path DAG (u is a successor of v iff τ(s,u) = τ(s,v) + w(v,u)).
  // The paper computes this via Z ⊗ (Z •⟨⊗,g⟩ Aᵀ); the explicit sweep below
  // is the same arithmetic evaluated directly.
  std::vector<double> counter(
      static_cast<std::size_t>(nb) * static_cast<std::size_t>(n), 0.0);
  for (vid_t v = 0; v < n; ++v) {
    auto cols = g.adj().row_cols(v);
    auto vals = g.adj().row_vals(v);
    for (vid_t s = 0; s < nb; ++s) {
      const Weight dv = t.d(s, v);
      if (dv == kInfWeight) continue;
      double c = 0;
      for (std::size_t i = 0; i < cols.size(); ++i) {
        if (t.d(s, cols[i]) == dv + vals[i]) c += 1.0;
      }
      counter[flat(s, n, v)] = c;
    }
  }

  // Lines 3–4: the initial frontier is the set of leaves (counter zero).
  std::vector<unsigned char> done(
      static_cast<std::size_t>(nb) * static_cast<std::size_t>(n), 0);
  FrontierBuilder<Centpath> init(nb, n);
  for (vid_t s = 0; s < nb; ++s) {
    const vid_t src = t.sources[static_cast<std::size_t>(s)];
    done[flat(s, n, src)] = 1;  // the root never joins a frontier
    for (vid_t v = 0; v < n; ++v) {
      if (v == src || t.d(s, v) == kInfWeight) continue;
      if (counter[flat(s, n, v)] == 0.0) {
        done[flat(s, n, v)] = 1;
        init.push(s, v, Centpath{t.d(s, v), 1.0 / t.m(s, v), -1.0});
      }
    }
  }
  Csr<Centpath> frontier = init.build();

  // Lines 5–12: back-propagate centrality factors along Aᵀ; a vertex joins
  // the frontier exactly once, when its last successor has reported.
  while (frontier.nnz() > 0) {
    telemetry::Span iter_span("mfbc.mfbr.multiply");
    iter_span.attr("frontier_nnz", static_cast<std::int64_t>(frontier.nnz()));
    telemetry::observe("mfbc.seq.backward.frontier_nnz",
                       static_cast<double>(frontier.nnz()));
    sparse::SpgemmStats st;
    Csr<Centpath> product = sparse::spgemm<CentpathMonoid>(
        frontier, at, BrandesAction{}, &st);
    if (trace != nullptr) {
      trace->frontier_nnz.push_back(frontier.nnz());
      trace->product_nnz.push_back(product.nnz());
      trace->total_ops += st.ops;
    }
    FrontierBuilder<Centpath> next(nb, n);
    for (vid_t s = 0; s < nb; ++s) {
      const vid_t src = t.sources[static_cast<std::size_t>(s)];
      auto cols = product.row_cols(s);
      auto vals = product.row_vals(s);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const vid_t v = cols[i];
        const Centpath& cp = vals[i];
        const std::size_t at_sv = flat(s, n, v);
        // Only contributions matching τ(s,v) come from true successors; the
        // ⊗ monoid keeps the maximum weight, which cannot exceed τ(s,v) by
        // the triangle inequality, so a mismatch means "no valid term".
        if (t.d(s, v) == kInfWeight || cp.w != t.d(s, v)) continue;
        z.zeta[at_sv] += cp.p;
        counter[at_sv] += cp.c;  // cp.c = −(number of reporting successors)
        if (!done[at_sv] && counter[at_sv] == 0.0) {
          done[at_sv] = 1;
          if (v != src) {
            next.push(s, v,
                      Centpath{t.d(s, v), 1.0 / t.m(s, v) + z.zeta[at_sv], -1.0});
          }
        }
      }
    }
    frontier = next.build();
  }
  return z;
}

std::vector<double> mfbc(const Graph& g, const MfbcOptions& opts,
                         MfbcStats* stats) {
  MFBC_CHECK(opts.batch_size >= 1, "batch size must be positive");
  const vid_t n = g.n();
  std::vector<vid_t> sources = opts.sources;
  if (sources.empty()) {
    sources.resize(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  }
  const sparse::Csr<Weight> at = sparse::transpose(g.adj());
  std::vector<double> lambda(static_cast<std::size_t>(n), 0.0);
  for (std::size_t lo = 0; lo < sources.size(); lo += static_cast<std::size_t>(opts.batch_size)) {
    const std::size_t hi =
        std::min(sources.size(), lo + static_cast<std::size_t>(opts.batch_size));
    std::span<const vid_t> batch(sources.data() + lo, hi - lo);
    telemetry::Span batch_span("mfbc.batch");
    batch_span.attr("nb", static_cast<std::int64_t>(hi - lo));
    FrontierTrace* fwd = stats != nullptr ? &stats->forward : nullptr;
    FrontierTrace* bwd = stats != nullptr ? &stats->backward : nullptr;
    PathMatrix t = mfbf(g, batch, fwd);
    FactorMatrix z = mfbr(g, at, t, bwd);
    // Line 5 of Algorithm 3: λ(v) += Σ_s ζ(s,v)·σ̄(s,v).
    for (vid_t s = 0; s < t.nb; ++s) {
      const vid_t src = t.sources[static_cast<std::size_t>(s)];
      for (vid_t v = 0; v < n; ++v) {
        if (v == src || t.d(s, v) == kInfWeight) continue;
        lambda[static_cast<std::size_t>(v)] += z.z(s, v) * t.m(s, v);
      }
    }
    if (stats != nullptr) ++stats->batches;
  }
  return lambda;
}

}  // namespace mfbc::core
