// TEPS accounting (paper §7.1): "the metric of edge traversals per second".
//
// For betweenness centrality on a connected unweighted graph each edge is
// traversed once per starting vertex, so a run from nsources sources
// performs nsources·m traversals; MTEPS/node divides by modelled time and
// node count, which is what Figures 1–2 plot.
#pragma once

#include "graph/graph.hpp"

namespace mfbc::core {

/// Total edge traversals for a BC run over `nsources` starting vertices.
double edge_traversals(const graph::Graph& g, double nsources);

/// Millions of traversals per second per node.
double mteps_per_node(double traversals, double seconds, int nodes);

}  // namespace mfbc::core
