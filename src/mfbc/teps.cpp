#include "mfbc/teps.hpp"

#include "support/error.hpp"

namespace mfbc::core {

double edge_traversals(const graph::Graph& g, double nsources) {
  return static_cast<double>(g.m()) * nsources;
}

double mteps_per_node(double traversals, double seconds, int nodes) {
  MFBC_CHECK(seconds > 0 && nodes > 0, "mteps needs positive time and nodes");
  return traversals / seconds / 1e6 / static_cast<double>(nodes);
}

}  // namespace mfbc::core
