// Distributed MFBC (paper §6): Algorithms 1–3 executed on the simulated
// machine with every frontier relaxation performed as a distributed
// generalized SpGEMM from src/dist.
//
// Two operating modes, mirroring the paper's two implementations:
//   * CTF-MFBC  — per-multiply plan autotuning over the full §5.2 space
//     (PlanMode::kAuto), "dynamically selects data layouts without guidance
//     from the developer";
//   * CA-MFBC   — the fixed 3D layout of Theorem 5.1 (PlanMode::kFixedCa):
//     the adjacency matrix is replicated over c layers (the 1D level, our
//     Variant1D::kB since the adjacency is the second operand of F·A) and
//     each layer runs the "BC" 2D variant on a √(p/c)×√(p/c) grid.
//
// The accumulated matrices T/ζ and the frontier bookkeeping live in dense
// per-rank state blocks aligned with a fixed nb×n state grid — O(n·nb/p)
// words per rank, the Theorem 5.1 memory footprint. The adjacency operand is
// mapped to each plan's home layout once and cached (the theorem's
// replication amortization).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/batch_driver.hpp"
#include "dist/partition.hpp"
#include "dist/spgemm_dist.hpp"
#include "graph/graph.hpp"
#include "mfbc/mfbc_seq.hpp"
#include "sim/comm.hpp"
#include "tune/calibrate.hpp"

namespace mfbc::core {

enum class PlanMode { kAuto, kFixedCa };

struct DistMfbcOptions {
  vid_t batch_size = 64;
  PlanMode plan_mode = PlanMode::kAuto;
  /// Replication factor c for CA-MFBC; p/c must be a perfect square.
  int replication_c = 1;
  dist::TuneOptions tune;
  /// Optional adaptive tuner (tune/calibrate.hpp). When set and plan_mode is
  /// kAuto, every iteration re-plans through it: the calibrated model, the
  /// stream's measured frontier ratios, the persistent plan cache, and the
  /// switch hysteresis all apply. Plans may change; results never do. Not
  /// owned; must outlive run().
  tune::Tuner* tuner = nullptr;
  /// If non-empty, accumulate partial BC from these sources only. Ids must
  /// be in [0, n) and duplicate-free; run() throws mfbc::Error otherwise,
  /// before any distribution work starts.
  std::vector<vid_t> sources;
  /// Durable checkpoint directory and resume flag, forwarded to the shared
  /// batch driver (core/batch_driver.hpp BatchRunOptions).
  std::string checkpoint_dir;
  bool resume = false;
  /// Version-stable planning for the serving layer (docs/serving.md): plan
  /// selection sees the adjacency nnz quantized to its power-of-two band
  /// (the plan-cache band, tune/plan_cache.hpp) instead of the exact count,
  /// and skips the resident-memory tightening — both of which drift with
  /// small mutations. Within a band, every iteration's plan is then a pure
  /// function of the batch shape, so source batches whose BFS DAGs a
  /// mutation cannot touch replay bit-identically across graph versions.
  /// Results are unchanged by this flag (plans never change results); only
  /// which plan runs can differ.
  bool stable_plans = false;
  /// Structural signature of the graph version (graph/mutate.hpp). Bound
  /// into durable-checkpoint signatures and tuner plan-cache keys; 0 (the
  /// batch default) keeps pre-versioning checkpoints and profiles usable.
  std::uint64_t graph_signature = 0;
  /// When set, receives one λ-delta per batch in the caller's original
  /// vertex ids (core/batch_driver.hpp batch_deltas, unpermuted the same
  /// way the returned λ is). Summing the deltas in batch order reproduces
  /// run()'s result bitwise.
  std::vector<std::vector<double>>* batch_deltas = nullptr;
  /// Per-committed-batch observer with an early-stop vote (the adaptive
  /// sampler's hook; core/batch_driver.hpp BatchObserver for the full
  /// contract). Non-empty deltas are unpermuted to the caller's original
  /// vertex ids before the call; resume-replayed batches arrive with an
  /// empty delta, pass-through.
  BatchRunOptions::BatchObserver on_batch;
};

struct DistMfbcStats {
  FrontierTrace forward;
  FrontierTrace backward;
  int batches = 0;
  int batch_retries = 0;    ///< batches re-run after a rank failure
  int resumed_batches = 0;  ///< batches skipped by a --resume restart
  int spare_rehomes = 0;    ///< recoveries served from the spare pool
  int grid_shrinks = 0;     ///< recoveries that shrank the physical grid
  std::vector<std::string> plans_used;  ///< distinct plan names, in order seen
  /// Critical-path cost deltas per phase (summed over batches): how much of
  /// the run's W/S/time the forward (MFBF) and backward (MFBr) phases each
  /// contributed — the Table 3 breakdown at phase granularity.
  sim::Cost forward_cost;
  sim::Cost backward_cost;
  /// Max/mean per-rank load factors of the run (docs/partitioning.md):
  /// resident adjacency nonzeros per rank and measured multiply ops per
  /// rank. 1.0 is perfectly balanced; also exported as the
  /// dist.imbalance.{nnz,ops} gauges.
  double imbalance_nnz = 1.0;
  double imbalance_ops = 1.0;
};

/// The Theorem 5.1 processor grid for p ranks and replication factor c.
dist::Plan ca_plan(int p, int c);

class DistMfbc {
 public:
  /// Distributes g's adjacency matrix (and its transpose, for the backward
  /// phase) over all of sim's ranks on a near-square base grid.
  DistMfbc(sim::Sim& sim, const graph::Graph& g);

  /// Same, with the vertices relabeled by a load-balanced partition
  /// (dist/partition.hpp) before distribution. Sources in
  /// DistMfbcOptions::sources and the returned centrality vector stay in
  /// the caller's original vertex ids: the permutation is applied at ingest
  /// and inverted at output, so results are bit-identical to the
  /// unpermuted run (an identity partition is an exact pass-through).
  DistMfbc(sim::Sim& sim, const graph::Graph& g, dist::Partition part);

  /// Run batched BC; centrality scores are gathered to the caller at the
  /// end (one reduction, charged).
  ///
  /// Under fault injection (sim().enable_faults) the batch loop checkpoints
  /// the accumulated λ at batch boundaries and rolls the current batch back
  /// on rank failure; results stay bit-identical to the fault-free run for
  /// every recoverable schedule (docs/fault_tolerance.md). Unrecoverable
  /// schedules throw sim::FaultError.
  std::vector<double> run(const DistMfbcOptions& opts,
                          DistMfbcStats* stats = nullptr);

  const dist::DistMatrix<Weight>& adj() const { return adj_; }
  sim::Sim& sim() { return sim_; }

 private:
  struct Batch;  // per-batch dense state blocks (defined in the .cpp)

  dist::Plan plan_for(const DistMfbcOptions& opts, const char* stream,
                      const char* monoid, double frontier_nnz, double b_nnz,
                      double out_words) const;

  /// One full MFBF + MFBr pass over `batch_sources`, accumulating into
  /// `lambda`. Throws sim::FaultError out of the charging layer on rank
  /// failure; the shared batch driver's retry loop (core/batch_driver.hpp)
  /// owns checkpointing and rollback.
  void run_batch(const DistMfbcOptions& opts,
                 const std::vector<vid_t>& batch_sources,
                 std::vector<double>& lambda, DistMfbcStats* stats,
                 std::span<const int> all_ranks, int batch_index);

  sim::Sim& sim_;
  dist::Partition part_;  ///< vertex ordering (identity for plain block)
  graph::Graph gp_;       ///< the relabeled graph (empty when identity)
  const graph::Graph& g_; ///< the graph the engine computes on (gp_ or caller's)
  dist::Layout base_;                  ///< near-square grid over all ranks
  dist::DistMatrix<Weight> adj_;       ///< A
  dist::DistMatrix<Weight> adj_t_;     ///< Aᵀ
  dist::HomeCache<Weight> adj_cache_;  ///< plan-home copies of A
  dist::HomeCache<Weight> adj_t_cache_;
  double imb_nnz_ = 1.0;  ///< measured per-rank resident-nnz imbalance
  dist::DistSpgemmStats run_ops_;  ///< per-rank ops across the run's multiplies
};

}  // namespace mfbc::core
