// Adaptive (ε,δ)-sampled betweenness centrality on the shared batch driver
// (docs/approximation.md).
//
// Exact MFBC sweeps all n sources; the approximation literature the ROADMAP
// points at (van der Grinten & Meyerhenke, "Scaling Betweenness Approximation
// to Billions of Edges by MPI-based Adaptive Sampling") serves BC at scale by
// sampling sources until a per-vertex (ε,δ) guarantee holds. This module is
// that sampler, built as a *layer over* core::run_batched_bc rather than a
// new engine: it draws a seeded source permutation, hands the whole list to
// an engine run (DistMfbc or baseline::CombBlasBc — faults, tuning,
// partitioning, and async schedules apply unchanged), observes each
// committed batch's λ-delta through BatchRunOptions::on_batch, folds it into
// running moments, and votes to stop the run the moment the guarantee holds.
//
// Estimator. Brandes' identity λ(v) = Σ_s δ_s(v) makes the per-source
// dependency a bounded random variable under a uniform source:
// X_s(v) = δ_s(v)/R ∈ [0, 1] with R = max(1, n−2), and
// E[X] = λ(v)/(n·R) =: b(v). After k sampled sources the plug-in estimate is
// λ̂(v) = (n/k)·Σ δ — at k = n the scale is exactly 1.0, so ε→0 (which never
// converges early) degenerates to the exact sweep *bit-for-bit*.
//
// Confidence intervals. Two deviation bounds are maintained and the tighter
// one wins per vertex, both at confidence 1 − δ/(2n) per side (a union bound
// over n vertices and both tails makes the *joint* miss probability ≤ δ):
//   * Hoeffding–Serfling (sampling without replacement over the finite
//     source population): width √((1 − (k−1)/n)·L/(2k)), L = ln(4n/δ) —
//     vertex-independent, with the WOR factor driving it to 0 as k → n.
//   * Empirical Bernstein (Maurer–Pontil) over the B *full* batch means
//     Y_j(v) ∈ [0, 1]: width √(2·V̂(v)·L/B) + 7L/(3(B−1)) — variance-
//     adaptive, far tighter on low-variance vertices.
// The run stops when max_v min(hs, eb(v)) ≤ ε (every vertex's true b(v) is
// inside its interval with probability ≥ 1 − δ), when the sample budget
// max_samples is exhausted (guarantee *not* certified), or when all n
// sources are consumed (exact; width 0).
//
// Determinism and resume. The drawn source list is a pure function of
// (n, seed, cap); batch composition and λ accumulation are the engine's, so
// the whole run is bit-identical across thread counts and recoverable fault
// schedules at fixed (seed, schedule). The sampler's statistics persist as a
// sidecar file (`mfbc.stats.v1`) next to the engine's λ checkpoint, written
// after every committed batch *before* the λ save: a crash between the two
// leaves the sidecar exactly one batch ahead, which the resume path
// reconciles (the replayed batch's accumulation is skipped). A λ checkpoint
// ahead of the sidecar cannot result from any crash of this ordering and is
// refused as a named defect (AdaptiveStatsError), as are missing, truncated,
// corrupt, or mismatched sidecars.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/batch_driver.hpp"
#include "graph/graph.hpp"
#include "support/error.hpp"
#include "telemetry/json.hpp"

namespace mfbc::core {

/// Named defect in the adaptive statistics sidecar: missing, version
/// mismatch, truncated, corrupt, count/signature mismatch, or inconsistent
/// with the λ checkpoint it rides alongside. Never silently ignored — a bad
/// sidecar would turn the (ε,δ) guarantee into a lie.
class AdaptiveStatsError : public mfbc::Error {
 public:
  explicit AdaptiveStatsError(const std::string& what) : mfbc::Error(what) {}
};

inline constexpr const char kAdaptiveStatsMagic[] = "mfbc.stats.v1\n";

struct AdaptiveSamplerOptions {
  /// Half-width target for every vertex's normalized centrality
  /// b(v) = λ(v)/(n·R) ∈ [0,1]. 0 never converges early: the run degenerates
  /// to the exact all-n sweep, bit-equal to run_batched_bc.
  double eps = 0.05;
  /// Joint miss probability: P[any vertex's true b(v) outside its CI] ≤ δ.
  double delta = 0.1;
  std::uint64_t seed = 1;
  /// Sources per engine batch (also the batch-mean granularity of the
  /// empirical-Bernstein bound).
  graph::vid_t batch_size = 16;
  /// Hard sample budget; 0 = up to n. Stopping on the budget (rather than on
  /// convergence or exhaustion) yields guarantee_met = false.
  graph::vid_t max_samples = 0;
  /// Directory shared with the engine's durable λ checkpoint; the sampler's
  /// `mfbc.stats.v1` sidecar lives beside `mfbc.ckpt`. Empty keeps the
  /// statistics in memory only.
  std::string checkpoint_dir;
  /// Resume a killed run: load the sidecar, cross-check it against the λ
  /// checkpoint, and re-evaluate the stop rule at the restore point. The
  /// resumed run's (samples_used, λ, CI bounds) are bit-identical to the
  /// uninterrupted run's.
  bool resume = false;
  /// Graph structural signature (graph/mutate.hpp); folded into the sidecar
  /// signature when nonzero so statistics from one graph version can never
  /// season another's estimate.
  std::uint64_t graph_sig = 0;
};

enum class AdaptiveStop {
  kConverged,   ///< max_v CI half-width ≤ ε with k < n samples
  kExhausted,   ///< all n sources consumed — the estimate is exact
  kSampleCap,   ///< max_samples hit first — guarantee NOT certified
};

const char* adaptive_stop_name(AdaptiveStop reason);

struct AdaptiveSampleResult {
  /// λ̂ scaled to exact-λ units: (n/k)·Σ δ (identity when k = n).
  std::vector<double> lambda;
  /// Per-vertex CI endpoints in λ units; guaranteed to bracket lambda[v].
  /// Equal to lambda on exhaustion (exact ⇒ width 0).
  std::vector<double> ci_lower;
  std::vector<double> ci_upper;
  /// The full drawn source permutation handed to the engine (its first
  /// samples_used entries were executed). Feeding this list back as an
  /// explicit engine source list reproduces the sampled λ̂·(k/n) bitwise.
  std::vector<graph::vid_t> sources;
  graph::vid_t samples_used = 0;
  int batches = 0;                  ///< batches folded into the statistics
  std::uint64_t full_batches = 0;   ///< batches in the Bernstein moments
  AdaptiveStop stop_reason = AdaptiveStop::kExhausted;
  /// True when the (ε,δ) guarantee is certified (converged or exhausted).
  bool guarantee_met = false;
  /// max_v half-width at stop, in normalized b(v) units (compare to ε).
  double max_ci_width = 0;
};

/// Persisted sampler statistics — the `mfbc.stats.v1` sidecar payload,
/// exposed so tests can pin the defect taxonomy.
struct AdaptiveStats {
  std::uint64_t n = 0;
  std::uint64_t batches_done = 0;   ///< batches folded into these moments
  std::uint64_t samples_used = 0;
  std::uint64_t full_batches = 0;
  std::uint64_t sig = 0;            ///< adaptive run-shape signature
  std::vector<double> m1;           ///< Σ batch means, per vertex
  std::vector<double> m2;           ///< Σ squared batch means, per vertex
};

/// Signature binding a statistics sidecar to its run shape: n, ε, δ, seed,
/// batch size, sample cap, the drawn source list, and (when nonzero) the
/// graph's structural signature. Any mismatch refuses the resume.
std::uint64_t adaptive_signature(graph::vid_t n,
                                 const AdaptiveSamplerOptions& opts,
                                 const std::vector<graph::vid_t>& sources);

/// The sidecar file inside `dir`, beside checkpoint_path(dir).
std::string adaptive_stats_path(const std::string& dir);

/// Atomically write `st` (temp file + rename, like save_checkpoint).
void save_adaptive_stats(const std::string& dir, const AdaptiveStats& st);

/// Load and fully verify a sidecar. Throws AdaptiveStatsError naming the
/// file and the defect (missing, version mismatch, truncated, checksum
/// mismatch, count mismatch).
AdaptiveStats load_adaptive_stats(const std::string& dir);

/// k distinct uniform vertices (partial Fisher–Yates, Xoshiro256(seed)) —
/// the seeded source permutation; deterministic in (n, k, seed).
std::vector<graph::vid_t> sample_sources(graph::vid_t n, graph::vid_t k,
                                         std::uint64_t seed);

/// One engine run: execute batched BC over exactly `sources` (in order) with
/// the sampler's observer installed, honoring `resume`, and return the
/// accumulated λ in caller vertex ids. The adapter owns engine choice and
/// all engine options (it must forward opts.checkpoint_dir so λ and the
/// statistics sidecar land in the same directory, and opts.batch_size so
/// batch boundaries match the moments).
using AdaptiveEngineRunner = std::function<std::vector<double>(
    const std::vector<graph::vid_t>& sources,
    const BatchRunOptions::BatchObserver& on_batch, bool resume)>;

/// Run the adaptive sampler over `run_engine`. Deterministic in
/// (seed, schedule); bit-identical across thread counts, recoverable fault
/// schedules, and checkpoint resume. Exports approx.* telemetry (samples,
/// batches, CI-width histogram, stop reason).
AdaptiveSampleResult run_adaptive_bc(graph::vid_t n,
                                     const AdaptiveSamplerOptions& opts,
                                     const AdaptiveEngineRunner& run_engine);

/// The `approx` JSON block shared by mfbc_cli, bc_server, and the benches
/// (schema pinned by the approx-smoke CI job): eps, delta, seed, samples,
/// batches, stop_reason, guarantee, and ci_width percentiles in λ units.
telemetry::Json approx_json(const AdaptiveSampleResult& r,
                            const AdaptiveSamplerOptions& opts);

}  // namespace mfbc::core
