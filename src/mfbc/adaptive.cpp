#include "mfbc/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>

#include "core/checkpoint.hpp"
#include "support/rng.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace mfbc::core {

namespace {

using graph::vid_t;

constexpr std::size_t kStatsMagicBytes = sizeof(kAdaptiveStatsMagic) - 1;

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t get_u64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{static_cast<unsigned char>(in[at + i])} << (8 * i);
  }
  return v;
}

void put_doubles(std::string& out, const std::vector<double>& xs) {
  for (double x : xs) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    put_u64(out, bits);
  }
}

[[noreturn]] void bad_stats(const std::string& path, const std::string& why) {
  throw AdaptiveStatsError("adaptive statistics " + path + ": " + why);
}

/// Nearest-rank percentile of an unsorted sample (copies; small n·8 bytes).
double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(std::llround(rank));
  return xs[std::min(idx, xs.size() - 1)];
}

/// Live sampler state: the persisted AdaptiveStats plus the derived stop
/// decision. All arithmetic is a pure fold over committed batch deltas in
/// batch order, so the state — and with it the stop batch — is bit-identical
/// wherever those deltas are (threads, fault retries, resume replays).
struct SamplerState {
  vid_t n = 0;
  vid_t cap = 0;            ///< drawn source count (min(max_samples, n) | n)
  vid_t batch_size = 0;
  double eps = 0;
  double rr = 1;            ///< R = max(1, n−2)
  double log_term = 0;      ///< L = ln(4n/δ)
  bool durable = false;
  std::string dir;

  AdaptiveStats stats;

  bool stopped = false;
  AdaptiveStop reason = AdaptiveStop::kExhausted;
  double max_width = std::numeric_limits<double>::infinity();

  /// Hoeffding–Serfling half-width after k of n samples without
  /// replacement; vertex-independent.
  double hs_width(double k) const {
    const double nn = static_cast<double>(n);
    const double wor = 1.0 - (k - 1.0) / nn;
    return std::sqrt(std::max(0.0, wor) * log_term / (2.0 * k));
  }

  /// Empirical-Bernstein (Maurer–Pontil) half-width for vertex v over the B
  /// full batch means; infinite until a variance estimate exists (B ≥ 2).
  double eb_width(std::size_t v, double b) const {
    if (b < 2) return std::numeric_limits<double>::infinity();
    const double mean_sq = stats.m1[v] * stats.m1[v] / b;
    const double var = std::max(0.0, (stats.m2[v] - mean_sq) / (b - 1.0));
    return std::sqrt(2.0 * var * log_term / b) +
           7.0 * log_term / (3.0 * (b - 1.0));
  }

  /// Evaluate the stop rule after `stats` covers batches_done batches.
  /// Returns true exactly when the run must stop; sets reason/max_width.
  bool evaluate_stop() {
    const vid_t k = static_cast<vid_t>(stats.samples_used);
    if (k >= n) {
      // Every source consumed: the estimate is exact, width 0 ≤ any ε.
      stopped = true;
      reason = AdaptiveStop::kExhausted;
      max_width = 0;
      return true;
    }
    const double b = static_cast<double>(stats.full_batches);
    const double hs = hs_width(static_cast<double>(k));
    // w(v) = min(hs, eb(v)) and hs is vertex-independent, so
    // max_v w(v) = min(hs, max_v eb(v)).
    double max_eb = 0;
    for (std::size_t v = 0; v < stats.m1.size(); ++v) {
      max_eb = std::max(max_eb, eb_width(v, b));
    }
    max_width = std::min(hs, max_eb);
    if (max_width <= eps) {
      stopped = true;
      reason = AdaptiveStop::kConverged;
      return true;
    }
    if (k >= cap) {
      // Budget exhausted short of both convergence and the population:
      // report honestly that the guarantee is not certified.
      stopped = true;
      reason = AdaptiveStop::kSampleCap;
      return true;
    }
    return false;
  }

  /// The driver's per-committed-batch observation (BatchObserver contract).
  /// Idempotent against resume replays and the stats-ahead crash window:
  /// a batch already covered by `stats` is never re-accumulated.
  bool observe(int batch_index, std::size_t batch_source_count,
               const std::vector<double>& delta) {
    const std::uint64_t done = static_cast<std::uint64_t>(batch_index) + 1;
    if (done < stats.batches_done) {
      // Replayed prefix of a resumed run: already in the moments, and the
      // stop decision point lies at a later batch.
      return true;
    }
    if (done == stats.batches_done) {
      // Either the resume replay of the last accounted batch, or the
      // re-execution after a crash that left the sidecar one batch ahead of
      // the λ checkpoint: the statistics already include it, so only the
      // stop rule runs — which is what makes a resumed run stop at the
      // exact batch the uninterrupted run would have.
      return !evaluate_stop();
    }
    if (delta.empty()) {
      // An empty delta is the resume-replay marker; seeing one *past* the
      // sidecar's coverage means λ advanced without its statistics — no
      // crash of the sidecar-first write order produces this.
      bad_stats(adaptive_stats_path(dir),
                "λ checkpoint is ahead of the statistics sidecar (batch " +
                    std::to_string(done) + " > " +
                    std::to_string(stats.batches_done) +
                    " accounted); the sidecar cannot certify this resume");
    }
    stats.samples_used += static_cast<std::uint64_t>(batch_source_count);
    if (batch_source_count == static_cast<std::size_t>(batch_size)) {
      // Only full batches enter the Bernstein moments: equal-sized batch
      // means are the iid-over-permutations sample the bound needs. A
      // partial tail batch (exhaustion/cap only) still feeds λ̂ and k.
      stats.full_batches += 1;
      const double denom =
          static_cast<double>(batch_source_count) * rr;
      for (std::size_t v = 0; v < delta.size(); ++v) {
        const double y = delta[v] / denom;
        stats.m1[v] += y;
        stats.m2[v] += y * y;
      }
    }
    stats.batches_done = done;
    if (durable) save_adaptive_stats(dir, stats);
    return !evaluate_stop();
  }
};

}  // namespace

const char* adaptive_stop_name(AdaptiveStop reason) {
  switch (reason) {
    case AdaptiveStop::kConverged: return "converged";
    case AdaptiveStop::kExhausted: return "exhausted";
    case AdaptiveStop::kSampleCap: return "sample_cap";
  }
  return "unknown";
}

std::uint64_t adaptive_signature(vid_t n, const AdaptiveSamplerOptions& opts,
                                 const std::vector<vid_t>& sources) {
  std::uint64_t h = fnv1a(&n, sizeof(n));
  std::uint64_t bits;
  std::memcpy(&bits, &opts.eps, sizeof(bits));
  h = fnv1a(&bits, sizeof(bits), h);
  std::memcpy(&bits, &opts.delta, sizeof(bits));
  h = fnv1a(&bits, sizeof(bits), h);
  h = fnv1a(&opts.seed, sizeof(opts.seed), h);
  h = fnv1a(&opts.batch_size, sizeof(opts.batch_size), h);
  h = fnv1a(&opts.max_samples, sizeof(opts.max_samples), h);
  for (vid_t s : sources) h = fnv1a(&s, sizeof(s), h);
  if (opts.graph_sig != 0) {
    h = fnv1a(&opts.graph_sig, sizeof(opts.graph_sig), h);
  }
  return h;
}

std::string adaptive_stats_path(const std::string& dir) {
  if (dir.empty()) return "mfbc.stats";
  return dir.back() == '/' ? dir + "mfbc.stats" : dir + "/mfbc.stats";
}

void save_adaptive_stats(const std::string& dir, const AdaptiveStats& st) {
  MFBC_CHECK(st.m1.size() == st.n && st.m2.size() == st.n,
             "adaptive statistics: moment length disagrees with n");
  std::string bytes;
  bytes.reserve(kStatsMagicBytes + 7 * 8 + st.n * 16);
  bytes.append(kAdaptiveStatsMagic, kStatsMagicBytes);
  put_u64(bytes, st.n);
  put_u64(bytes, st.batches_done);
  put_u64(bytes, st.samples_used);
  put_u64(bytes, st.full_batches);
  put_u64(bytes, st.sig);
  put_u64(bytes, static_cast<std::uint64_t>(st.m1.size()));
  put_doubles(bytes, st.m1);
  put_doubles(bytes, st.m2);
  put_u64(bytes, fnv1a(bytes.data(), bytes.size()));

  const std::string path = adaptive_stats_path(dir);
  const std::string tmp = path + ".tmp";
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) bad_stats(tmp, "cannot open for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) bad_stats(tmp, "write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    bad_stats(path, "rename from temp file failed");
  }
  telemetry::count("approx.stats_writes");
}

AdaptiveStats load_adaptive_stats(const std::string& dir) {
  const std::string path = adaptive_stats_path(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) bad_stats(path, "cannot open (no statistics to resume from?)");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kStatsMagicBytes ||
      std::memcmp(bytes.data(), kAdaptiveStatsMagic, kStatsMagicBytes) != 0) {
    if (bytes.compare(0, 11, "mfbc.stats.") == 0) {
      const std::size_t nl = bytes.find('\n');
      bad_stats(path,
                "version mismatch: file is '" +
                    bytes.substr(0, nl == std::string::npos
                                        ? std::min<std::size_t>(bytes.size(),
                                                                16)
                                        : nl) +
                    "', this build reads 'mfbc.stats.v1'");
    }
    bad_stats(path, "not a statistics sidecar (bad magic)");
  }
  const std::size_t header = kStatsMagicBytes + 6 * 8;
  if (bytes.size() < header + 8) bad_stats(path, "truncated (header cut off)");
  AdaptiveStats st;
  st.n = get_u64(bytes, kStatsMagicBytes);
  st.batches_done = get_u64(bytes, kStatsMagicBytes + 8);
  st.samples_used = get_u64(bytes, kStatsMagicBytes + 16);
  st.full_batches = get_u64(bytes, kStatsMagicBytes + 24);
  st.sig = get_u64(bytes, kStatsMagicBytes + 32);
  const std::uint64_t count = get_u64(bytes, kStatsMagicBytes + 40);
  if (count != st.n) bad_stats(path, "corrupt header: moment count != n");
  const std::size_t expect = header + count * 16 + 8;
  if (bytes.size() != expect) {
    bad_stats(path, "truncated: " + std::to_string(bytes.size()) +
                        " bytes, expected " + std::to_string(expect));
  }
  const std::uint64_t stored = get_u64(bytes, bytes.size() - 8);
  const std::uint64_t computed = fnv1a(bytes.data(), bytes.size() - 8);
  if (stored != computed) {
    bad_stats(path, "checksum mismatch (corrupt): stored " +
                        std::to_string(stored) + ", computed " +
                        std::to_string(computed));
  }
  st.m1.resize(count);
  st.m2.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t bits = get_u64(bytes, header + i * 8);
    std::memcpy(&st.m1[i], &bits, sizeof(double));
    bits = get_u64(bytes, header + (count + i) * 8);
    std::memcpy(&st.m2[i], &bits, sizeof(double));
  }
  telemetry::count("approx.stats_restores");
  return st;
}

std::vector<vid_t> sample_sources(vid_t n, vid_t k, std::uint64_t seed) {
  MFBC_CHECK(k >= 0 && k <= n, "sample count out of range");
  std::vector<vid_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), vid_t{0});
  Xoshiro256 rng(seed);
  for (vid_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<vid_t>(
                           rng.bounded(static_cast<std::uint64_t>(n - i)));
    std::swap(pool[static_cast<std::size_t>(i)],
              pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

AdaptiveSampleResult run_adaptive_bc(vid_t n, const AdaptiveSamplerOptions& opts,
                                 const AdaptiveEngineRunner& run_engine) {
  MFBC_CHECK(n >= 1, "adaptive sampling needs at least one vertex");
  MFBC_CHECK(std::isfinite(opts.eps) && opts.eps >= 0,
             "eps must be finite and non-negative");
  MFBC_CHECK(opts.delta > 0 && opts.delta < 1, "delta must be in (0, 1)");
  MFBC_CHECK(opts.batch_size >= 1, "batch size must be positive");
  MFBC_CHECK(opts.max_samples >= 0, "max_samples must be non-negative");
  MFBC_CHECK(!opts.resume || !opts.checkpoint_dir.empty(),
             "adaptive resume needs a checkpoint directory");
  MFBC_CHECK(run_engine != nullptr, "adaptive sampling needs an engine");

  telemetry::Span span("approx.adaptive");
  const vid_t cap =
      opts.max_samples > 0 ? std::min(opts.max_samples, n) : n;

  SamplerState st;
  st.n = n;
  st.cap = cap;
  st.batch_size = opts.batch_size;
  st.eps = opts.eps;
  st.rr = static_cast<double>(std::max<vid_t>(1, n - 2));
  st.log_term = std::log(4.0 * static_cast<double>(n) / opts.delta);
  st.durable = !opts.checkpoint_dir.empty();
  st.dir = opts.checkpoint_dir;
  st.stats.n = static_cast<std::uint64_t>(n);
  st.stats.m1.assign(static_cast<std::size_t>(n), 0.0);
  st.stats.m2.assign(static_cast<std::size_t>(n), 0.0);

  AdaptiveSampleResult result;
  // The *full* candidate permutation goes to one engine run: the engine's
  // checkpoint source signature must be stable wherever sampling stops, and
  // the early-stop vote trims execution, not the list.
  result.sources = sample_sources(n, cap, opts.seed);
  st.stats.sig = adaptive_signature(n, opts, result.sources);

  if (opts.resume) {
    AdaptiveStats prev = load_adaptive_stats(opts.checkpoint_dir);
    const std::string path = adaptive_stats_path(opts.checkpoint_dir);
    if (prev.n != static_cast<std::uint64_t>(n)) {
      bad_stats(path, "resumes a different graph (n mismatch)");
    }
    if (prev.sig != st.stats.sig) {
      bad_stats(path,
                "resumes a different run (eps/delta/seed/batch/source "
                "signature mismatch)");
    }
    // The sidecar is written before the λ checkpoint, so it may lead by
    // exactly one batch (the crash window) and can never trail: a trailing
    // sidecar could not certify the λ it rides alongside.
    const LambdaCheckpoint ck = load_checkpoint(opts.checkpoint_dir);
    if (prev.batches_done != ck.batches_done &&
        prev.batches_done != ck.batches_done + 1) {
      bad_stats(path, "disagrees with the λ checkpoint (" +
                          std::to_string(prev.batches_done) +
                          " batches accounted vs " +
                          std::to_string(ck.batches_done) +
                          " checkpointed); refusing to certify the resume");
    }
    st.stats = std::move(prev);
  }

  const BatchRunOptions::BatchObserver observer =
      [&st](int batch_index, std::size_t batch_source_count,
            const std::vector<double>& delta) {
        return st.observe(batch_index, batch_source_count, delta);
      };

  std::vector<double> raw = run_engine(result.sources, observer, opts.resume);
  MFBC_CHECK(raw.size() == static_cast<std::size_t>(n),
             "engine returned a λ vector of the wrong length");
  MFBC_CHECK(st.stopped,
             "engine finished without the stop rule concluding (observer "
             "not installed?)");

  const vid_t k = static_cast<vid_t>(st.stats.samples_used);
  result.samples_used = k;
  result.batches = static_cast<int>(st.stats.batches_done);
  result.full_batches = st.stats.full_batches;
  result.stop_reason = st.reason;
  result.guarantee_met = st.reason != AdaptiveStop::kSampleCap;
  result.max_ci_width = st.max_width;

  const double nn = static_cast<double>(n);
  const double scale_units = nn * st.rr;  // normalized b(v) → λ units
  if (k >= n) {
    // Exhaustion: the scale is exactly 1 — return the engine's λ bitwise,
    // the ε→0 ≡ exact contract.
    result.lambda = std::move(raw);
    result.ci_lower = result.lambda;
    result.ci_upper = result.lambda;
  } else {
    const double kk = static_cast<double>(k);
    const double b = static_cast<double>(st.stats.full_batches);
    const double hs = st.hs_width(kk);
    result.lambda.resize(raw.size());
    result.ci_lower.resize(raw.size());
    result.ci_upper.resize(raw.size());
    for (std::size_t v = 0; v < raw.size(); ++v) {
      const double est = raw[v] * (nn / kk);
      // Per vertex, the tighter of the two valid intervals wins; each pairs
      // its own center (the bound is anchored to that estimator's mean).
      const double eb = st.eb_width(v, b);
      double center;
      double width;
      if (hs <= eb) {
        center = raw[v] / (kk * st.rr);
        width = hs;
      } else {
        center = st.stats.m1[v] / b;
        width = eb;
      }
      const double lo = std::clamp(center - width, 0.0, 1.0) * scale_units;
      const double hi = std::clamp(center + width, 0.0, 1.0) * scale_units;
      result.lambda[v] = est;
      // Both centers estimate the same b(v); widening each interval to
      // include the reported point estimate keeps the artifact coherent
      // (lower ≤ λ̂ ≤ upper) without shrinking coverage.
      result.ci_lower[v] = std::min(lo, est);
      result.ci_upper[v] = std::max(hi, est);
    }
  }

  telemetry::count("approx.runs");
  telemetry::gauge("approx.samples", static_cast<double>(k));
  telemetry::gauge("approx.batches",
                   static_cast<double>(st.stats.batches_done));
  telemetry::gauge("approx.max_ci_width", st.max_width);
  telemetry::count(std::string("approx.stop.") +
                   adaptive_stop_name(st.reason));
  for (std::size_t v = 0; v < result.lambda.size(); ++v) {
    telemetry::observe("approx.ci_width",
                       result.ci_upper[v] - result.ci_lower[v]);
  }
  return result;
}

telemetry::Json approx_json(const AdaptiveSampleResult& r,
                            const AdaptiveSamplerOptions& opts) {
  std::vector<double> widths(r.lambda.size(), 0.0);
  for (std::size_t v = 0; v < r.lambda.size(); ++v) {
    widths[v] = r.ci_upper[v] - r.ci_lower[v];
  }
  telemetry::Json j = telemetry::Json::object();
  j["eps"] = opts.eps;
  j["delta"] = opts.delta;
  j["seed"] = static_cast<std::int64_t>(opts.seed);
  j["samples"] = static_cast<std::int64_t>(r.samples_used);
  j["batches"] = r.batches;
  j["full_batches"] = static_cast<std::int64_t>(r.full_batches);
  j["stop_reason"] = adaptive_stop_name(r.stop_reason);
  j["guarantee_met"] = r.guarantee_met;
  j["max_ci_width"] = r.max_ci_width;
  telemetry::Json ci = telemetry::Json::object();
  ci["p50"] = percentile_of(widths, 50);
  ci["p95"] = percentile_of(widths, 95);
  ci["max"] = widths.empty()
                  ? 0.0
                  : *std::max_element(widths.begin(), widths.end());
  j["ci_width"] = std::move(ci);
  return j;
}

}  // namespace mfbc::core
