#include "mfbc/approx.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sparse/ops.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace mfbc::core {

namespace {

/// k distinct uniform vertices (partial Fisher–Yates).
std::vector<vid_t> sample_vertices(vid_t n, vid_t k, std::uint64_t seed) {
  std::vector<vid_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), vid_t{0});
  Xoshiro256 rng(seed);
  for (vid_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<vid_t>(rng.bounded(
                           static_cast<std::uint64_t>(n - i)));
    std::swap(pool[static_cast<std::size_t>(i)],
              pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

}  // namespace

ApproxBcResult approx_bc(const graph::Graph& g, vid_t num_pivots,
                         std::uint64_t seed, vid_t batch_size) {
  MFBC_CHECK(num_pivots >= 1, "need at least one pivot");
  const vid_t n = g.n();
  const vid_t k = std::min(num_pivots, n);
  ApproxBcResult result;
  result.pivots_used = k;
  MfbcOptions opts;
  opts.batch_size = batch_size;
  opts.sources = sample_vertices(n, k, seed);
  result.bc = mfbc(g, opts);
  const double scale = static_cast<double>(n) / static_cast<double>(k);
  for (double& v : result.bc) v *= scale;
  return result;
}

AdaptiveBcResult adaptive_bc_vertex(const graph::Graph& g, vid_t v,
                                    const AdaptiveOptions& opts) {
  MFBC_CHECK(v >= 0 && v < g.n(), "vertex out of range");
  MFBC_CHECK(opts.alpha > 0 && std::isfinite(opts.alpha),
             "alpha must be positive and finite");
  MFBC_CHECK(opts.batch_size >= 1, "batch size must be positive");
  const vid_t n = g.n();
  const vid_t cap = opts.max_samples > 0 ? std::min(opts.max_samples, n) : n;
  const std::vector<vid_t> order = sample_vertices(n, cap, opts.seed);
  const auto at = sparse::transpose(g.adj());

  AdaptiveBcResult result;
  double sum = 0;
  vid_t used = 0;
  // alpha·n may overflow to +inf for extreme alpha on large n; the
  // comparison below then never trips and the estimator degrades to the
  // full sample budget — the correct limit, never a NaN or a wrap.
  const double threshold = opts.alpha * static_cast<double>(n);
  while (used < cap) {
    const vid_t take = std::min(opts.batch_size, cap - used);
    std::span<const vid_t> batch(order.data() + used,
                                 static_cast<std::size_t>(take));
    // One MFBF+MFBr round for the batch; δ(s,v) = ζ(s,v)·σ̄(s,v).
    PathMatrix t = mfbf(g, batch);
    FactorMatrix z = mfbr(g, at, t);
    for (vid_t s = 0; s < t.nb; ++s) {
      ++used;
      if (batch[static_cast<std::size_t>(s)] == v) continue;
      if (t.d(s, v) == algebra::kInfWeight) continue;
      sum += z.z(s, v) * t.m(s, v);
      if (sum >= threshold && used >= 2) break;
    }
    if (sum >= threshold && used >= 2) break;
  }
  result.samples_used = used;
  result.estimate =
      sum * static_cast<double>(n) / static_cast<double>(std::max<vid_t>(used, 1));
  return result;
}

}  // namespace mfbc::core
