#include "mfbc/mfbc_dist.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/batch_driver.hpp"
#include "dist/batch_state.hpp"
#include "sparse/ops.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace mfbc::core {

namespace {

using algebra::BellmanFordAction;
using algebra::BrandesAction;
using algebra::Centpath;
using algebra::CentpathMonoid;
using algebra::kInfWeight;
using algebra::Multpath;
using algebra::MultpathMonoid;
using algebra::TropicalMinMonoid;
using dist::DistMatrix;
using dist::Layout;
using dist::Range;
using sparse::Coo;
using sparse::Csr;

template <typename T>
using Keep = dist::detail::KeepFirst<T>;

/// The per-block dense fields of the MFBC batch state: accumulated T
/// (distances, multiplicities), the centrality factors ζ, the Algorithm 2
/// counters, and the done flags.
struct MfbcFields {
  std::vector<Weight> dist;
  std::vector<algebra::Multiplicity> mult;
  std::vector<double> zeta;
  std::vector<double> counter;
  std::vector<unsigned char> done;

  void resize(std::size_t sz) {
    dist.assign(sz, kInfWeight);
    mult.assign(sz, 0.0);
    zeta.assign(sz, 0.0);
    counter.assign(sz, 0.0);
    done.assign(sz, 0);
  }
};

}  // namespace

dist::Plan ca_plan(int p, int c) {
  MFBC_CHECK(c >= 1 && p % c == 0, "replication factor must divide p");
  const int rest = p / c;
  const int s = static_cast<int>(std::lround(std::sqrt(static_cast<double>(rest))));
  MFBC_CHECK(s * s == rest, "CA-MFBC requires p/c to be a perfect square");
  dist::Plan plan;
  plan.p1 = c;
  plan.p2 = s;
  plan.p3 = s;
  // Theorem 5.1's grid, translated to frontier-first operand order: the
  // adjacency (our second operand, B) is replicated c-fold by the 1D level
  // and is *stationary* inside each layer's 2D algorithm (variant AC, which
  // communicates the frontier and the output). This is what makes the
  // adjacency movement a one-time cost "amortized over (up to d) sparse
  // matrix multiplications" while per-multiply traffic is the frontier and
  // output at O(nnz/√(cp)).
  plan.v1 = dist::Variant1D::kB;
  plan.v2 = dist::Variant2D::kAC;
  return plan;
}

/// Per-batch dense state tiled on the near-square state grid (shared
/// machinery in dist/batch_state.hpp; fields above).
struct DistMfbc::Batch : dist::BatchState<MfbcFields> {
  using dist::BatchState<MfbcFields>::BatchState;
};

DistMfbc::DistMfbc(sim::Sim& sim, const graph::Graph& g)
    : DistMfbc(sim, g, dist::Partition{}) {}

DistMfbc::DistMfbc(sim::Sim& sim, const graph::Graph& g, dist::Partition part)
    : sim_(sim),
      part_(std::move(part)),
      // Non-identity partitions relabel the graph once at ingest; the
      // engine computes entirely in permuted ids and run() inverts the
      // permutation on the centrality output. Identity partitions keep the
      // caller's graph by reference (no copy).
      gp_(part_.identity() ? graph::Graph{} : part_.apply(g)),
      g_(part_.identity() ? g : gp_) {
  auto [pr, pc] = dist::near_square_grid(sim.nranks());
  base_ = Layout{0, pr, pc, Range{0, g_.n()}, Range{0, g_.n()}, false};
  adj_ = DistMatrix<Weight>::scatter<TropicalMinMonoid>(sim, g_.adj(), base_);
  adj_t_ = DistMatrix<Weight>::scatter<TropicalMinMonoid>(
      sim, sparse::transpose(g_.adj()), base_);
  // The adjacency and its transpose stay resident for the whole run; record
  // them with the simulated allocator so plan selection sees the memory that
  // is genuinely spoken for (plan_for subtracts the high-water mark).
  std::vector<double> rank_nnz(static_cast<std::size_t>(sim.nranks()), 0.0);
  for (int i = 0; i < pr; ++i) {
    for (int j = 0; j < pc; ++j) {
      const double entries = static_cast<double>(adj_.block(i, j).nnz()) +
                             static_cast<double>(adj_t_.block(i, j).nnz());
      sim.note_resident(base_.rank_at(i, j),
                        entries * sim::sparse_entry_words<Weight>());
      rank_nnz[static_cast<std::size_t>(base_.rank_at(i, j))] += entries;
    }
  }
  imb_nnz_ = dist::max_mean_imbalance(rank_nnz);
  telemetry::gauge("dist.imbalance.nnz", imb_nnz_);
}

dist::Plan DistMfbc::plan_for(const DistMfbcOptions& opts, const char* stream,
                              const char* monoid, double frontier_nnz,
                              double b_nnz, double out_words) const {
  if (opts.plan_mode == PlanMode::kFixedCa) {
    return ca_plan(sim_.nranks(), opts.replication_c);
  }
  // Version-stable planning (docs/serving.md): quantize the stationary
  // operand's nnz to its power-of-two band representative so plan choice —
  // and with it the summation grid of every unaffected batch — cannot drift
  // with small mutations. Crossing a band boundary is the serving layer's
  // cue to fall back to a full recompute.
  if (opts.stable_plans && b_nnz > 0) {
    b_nnz = std::exp2(std::floor(std::log2(b_nnz)));
  }
  auto stats = dist::MultiplyStats::estimated(
      /*m=*/opts.batch_size, /*k=*/g_.n(), /*n=*/g_.n(), frontier_nnz, b_nnz,
      /*words_a=*/sim::sparse_entry_words<Multpath>(),
      /*words_b=*/sim::sparse_entry_words<Weight>(), out_words);
  // Memory-pressure re-planning: the per-rank budget the tuner may spend is
  // what the machine has minus the high-water mark of long-lived residents
  // (the adjacency copies noted at construction). The floor keeps a machine
  // configured with a tiny memory_words from pruning every candidate.
  dist::TuneOptions topts = opts.tune;
  // The engine knows its data's actual placement: the distribution axis of
  // every enumerated plan matches the partition this instance was built on.
  topts.partition =
      part_.identity() ? dist::Dist::kBlock : dist::Dist::kBalanced;
  // Under stable_plans the resident high-water mark — which tracks the
  // exact adjacency nnz — must not steer plan selection either; the
  // serving layer sizes its machines so the untightened budget is safe.
  const double resident =
      opts.stable_plans ? 0.0 : sim_.resident_highwater_words();
  if (resident > 0) {
    // Heterogeneous fleets budget against the tightest rank's memory
    // (min_memory_words == memory_words bitwise when homogeneous).
    const double machine_words = sim_.model().min_memory_words();
    const double floor = machine_words * 0.01;
    const double avail = std::max(machine_words - resident, floor);
    topts.memory_words_limit = std::min(topts.memory_words_limit, avail);
  }
  if (opts.tuner != nullptr) {
    tune::PlanRequest req;
    req.stream = stream;
    req.monoid = monoid;
    req.ranks = sim_.nranks();
    req.stats = stats;
    req.machine = sim_.model();
    req.opts = topts;
    // A grid shrink is a topology-change event: plans cached for the old
    // placement stop being addressable under the bumped epoch.
    req.topology =
        sim_.faults() != nullptr ? sim_.faults()->shrinks() : 0;
    // The graph version keys the plan cache the same way the topology
    // epoch does: a mutated adjacency retires the old version's plans.
    req.graph_sig = opts.graph_signature;
    return opts.tuner->plan(req);
  }
  return dist::autotune(sim_.nranks(), stats, sim_.model(), topts);
}

namespace {

/// Componentwise critical-path delta, for the per-phase cost breakdown.
sim::Cost cost_delta(const sim::Cost& now, const sim::Cost& then) {
  sim::Cost d;
  d.words = now.words - then.words;
  d.msgs = now.msgs - then.msgs;
  d.comm_seconds = now.comm_seconds - then.comm_seconds;
  d.compute_seconds = now.compute_seconds - then.compute_seconds;
  d.ops = now.ops - then.ops;
  return d;
}

}  // namespace

std::vector<double> DistMfbc::run(const DistMfbcOptions& opts,
                                  DistMfbcStats* stats) {
  // With a tuner attached, install its observer for the whole run: every
  // distributed multiply below records (plan, prediction, measured cost),
  // which is what the per-iteration re-planning feeds on.
  std::optional<tune::ScopedObserver> observe;
  if (opts.tuner != nullptr) observe.emplace(&opts.tuner->observer());

  // Batching, λ-checkpoint/rollback, the retry loop, and the final reduce
  // are the shared driver's job (core/batch_driver.hpp); this engine only
  // supplies the per-batch algorithm and the recovery sizing hooks.
  BatchHooks hooks;
  hooks.run_batch = [&](const std::vector<vid_t>& batch_sources,
                        std::vector<double>& lambda,
                        std::span<const int> all_ranks, int batch_index) {
    run_batch(opts, batch_sources, lambda, stats, all_ranks, batch_index);
  };
  hooks.lost_block_words = [&](int i, int j) {
    return (static_cast<double>(adj_.block(i, j).nnz()) +
            static_cast<double>(adj_t_.block(i, j).nnz())) *
           sim::sparse_entry_words<Weight>();
  };
  int seen_shrinks = 0;
  hooks.invalidate_caches = [&, seen_shrinks]() mutable {
    // Plan-home adjacency replicas on dead ranks are gone; drop the caches
    // so the next multiply re-maps (and re-charges) them.
    adj_cache_.clear();
    adj_t_cache_.clear();
    // After a grid shrink the tuner's per-stream hysteresis state describes
    // a placement that no longer exists — forget it so the next plan is a
    // fresh decision on the shrunken topology (the bumped epoch already
    // retired the cached plans).
    const sim::FaultInjector* fi = sim_.faults();
    if (fi != nullptr && fi->shrinks() > seen_shrinks) {
      seen_shrinks = fi->shrinks();
      if (opts.tuner != nullptr) opts.tuner->reset_stream_state();
    }
  };
  // Sources arrive in the caller's original vertex ids; validate and map
  // them into partition order *positionally* (the batch composition and λ
  // accumulation order must not depend on the labels) before the driver
  // slices batches. λ comes back in permuted ids and is inverted below.
  run_ops_ = dist::DistSpgemmStats{};
  const std::vector<vid_t> sources =
      part_.map_sources(resolve_sources(g_.n(), opts.sources));
  BatchDriverStats driver_stats;
  BatchRunOptions run_opts;
  run_opts.checkpoint_dir = opts.checkpoint_dir;
  run_opts.resume = opts.resume;
  run_opts.graph_sig = opts.graph_signature;
  run_opts.batch_deltas = opts.batch_deltas;
  if (opts.on_batch) {
    if (part_.identity()) {
      run_opts.on_batch = opts.on_batch;
    } else {
      // The driver observes deltas in permuted ids; the caller's observer
      // must see original ids, exactly like the returned λ. Resume-replayed
      // batches carry an empty delta — pass it through unpermuted.
      run_opts.on_batch = [&opts, this](int batch_index,
                                        std::size_t batch_source_count,
                                        const std::vector<double>& delta) {
        if (delta.empty()) {
          return opts.on_batch(batch_index, batch_source_count, delta);
        }
        return opts.on_batch(batch_index, batch_source_count,
                             part_.unpermute(delta));
      };
    }
  }
  auto lambda = run_batched_bc(sim_, base_, g_.n(), sources,
                               opts.batch_size, hooks, &driver_stats,
                               run_opts);
  if (opts.batch_deltas != nullptr && !part_.identity()) {
    // Deltas come back in permuted ids like λ; hand them to the caller in
    // original ids so the splice contract composes with any partition.
    for (auto& delta : *opts.batch_deltas) {
      if (!delta.empty()) delta = part_.unpermute(delta);
    }
  }
  const double imb_ops = run_ops_.ops_imbalance(sim_.nranks());
  telemetry::gauge("dist.imbalance.ops", imb_ops);
  telemetry::gauge("dist.imbalance.nnz", imb_nnz_);
  if (stats != nullptr) {
    stats->batch_retries += driver_stats.batch_retries;
    stats->resumed_batches += driver_stats.resumed_batches;
    stats->spare_rehomes += driver_stats.spare_rehomes;
    stats->grid_shrinks += driver_stats.grid_shrinks;
    stats->imbalance_nnz = imb_nnz_;
    stats->imbalance_ops = imb_ops;
  }
  return part_.unpermute(lambda);
}

void DistMfbc::run_batch(const DistMfbcOptions& opts,
                         const std::vector<vid_t>& batch_sources,
                         std::vector<double>& lambda, DistMfbcStats* stats,
                         std::span<const int> all_ranks, int batch_index) {
  const vid_t n = g_.n();
  const int p = sim_.nranks();

  auto note_plan = [&](const dist::Plan& plan) {
    if (stats == nullptr) return;
    const std::string name = plan.to_string();
    if (std::find(stats->plans_used.begin(), stats->plans_used.end(), name) ==
        stats->plans_used.end()) {
      stats->plans_used.push_back(name);
    }
  };

  {
    Batch batch(batch_sources, n, p);
    const Layout& sl = batch.layout();

    telemetry::Span batch_span("mfbc.batch");
    batch_span.attr("index", static_cast<std::int64_t>(batch_index));
    batch_span.attr("nb", static_cast<std::int64_t>(batch.nb()));

    const sim::Cost before_forward = sim_.ledger().critical();
    telemetry::Span forward_span("mfbc.forward");

    // ---- MFBF (Algorithm 1) ----
    // Initial frontier: row s of T is row sources[s] of A. The entries move
    // from the adjacency owners to the state-grid owners: one all-to-all.
    DistMatrix<Multpath> frontier;
    {
      auto bins = dist::empty_bins<Multpath>(sl, n);
      double max_words = 0;
      for (vid_t s = 0; s < batch.nb(); ++s) {
        const vid_t src = batch.source(s);
        auto cols = g_.adj().row_cols(src);
        auto vals = g_.adj().row_vals(src);
        for (std::size_t x = 0; x < cols.size(); ++x) {
          auto [bi, bj] = sl.owner(s, cols[x]);
          bins[static_cast<std::size_t>(bi * sl.pc + bj)].push(
              s - sl.block_rows(bi, bj).lo, cols[x],
              Multpath{vals[x], 1.0});
          auto& blk = batch.at(bi, bj);
          const std::size_t at = blk.at(s, cols[x]);
          blk.dist[at] = vals[x];
          blk.mult[at] = 1.0;
        }
      }
      for (const auto& bin : bins) {
        max_words = std::max(max_words,
                             static_cast<double>(bin.nnz()) *
                                 sim::sparse_entry_words<Multpath>());
      }
      sim_.charge_alltoall(all_ranks, max_words);
      frontier = dist::from_blocks<Keep<Multpath>>(batch.nb(), n, sl, std::move(bins));
    }

    while (frontier.nnz() > 0) {
      telemetry::count("mfbc.forward.iterations");
      telemetry::observe("mfbc.forward.frontier_nnz",
                         static_cast<double>(frontier.nnz()));
      const dist::Plan plan =
          plan_for(opts, "forward", "multpath",
                   static_cast<double>(frontier.nnz()),
                   static_cast<double>(adj_.nnz()),
                   sim::sparse_entry_words<Multpath>());
      note_plan(plan);
      dist::DistSpgemmStats dst;
      DistMatrix<Multpath> product = dist::spgemm<MultpathMonoid>(
          sim_, plan, frontier, adj_, BellmanFordAction{}, sl, &dst,
          &adj_cache_);
      run_ops_.merge(dst);
      if (stats != nullptr) {
        stats->forward.frontier_nnz.push_back(frontier.nnz());
        stats->forward.product_nnz.push_back(product.nnz());
        stats->forward.total_ops += static_cast<nnz_t>(dst.total_ops);
      }
      // Local accumulate-and-filter (lines 5–6): T ⊕= G, next frontier keeps
      // entries whose path information improved or tied with new paths.
      // Each (i,j) task touches only its own batch block and bin; compute
      // charges depend only on the product block sizes, so they are issued
      // serially after the barrier in the serial (i,j) order.
      auto bins = dist::empty_bins<Multpath>(sl, n);
      support::parallel_for(
          static_cast<std::size_t>(sl.pr) * static_cast<std::size_t>(sl.pc),
          [&](std::size_t t) {
            const int i = static_cast<int>(t) / sl.pc;
            const int j = static_cast<int>(t) % sl.pc;
            auto& blk = batch.at(i, j);
            const auto& gb = product.block(i, j);
            auto& bin = bins[t];
            for (vid_t lr = 0; lr < gb.nrows(); ++lr) {
              const vid_t s = blk.rows.lo + lr;
              const vid_t src = batch.source(s);
              auto cols = gb.row_cols(lr);
              auto vals = gb.row_vals(lr);
              for (std::size_t x = 0; x < cols.size(); ++x) {
                const vid_t v = cols[x];
                if (v == src) continue;
                const Multpath& mp = vals[x];
                const std::size_t at = blk.at(s, v);
                if (mp.w < blk.dist[at]) {
                  blk.dist[at] = mp.w;
                  blk.mult[at] = mp.m;
                  bin.push(lr, v, mp);
                } else if (mp.w == blk.dist[at]) {
                  blk.mult[at] += mp.m;
                  bin.push(lr, v, Multpath{mp.w, mp.m});
                }
              }
            }
          });
      for (int i = 0; i < sl.pr; ++i) {
        for (int j = 0; j < sl.pc; ++j) {
          sim_.charge_compute(sl.rank_at(i, j),
                              static_cast<double>(product.block(i, j).nnz()));
        }
      }
      frontier = dist::from_blocks<Keep<Multpath>>(batch.nb(), n, sl, std::move(bins));
      // Line 3's termination test is a global predicate: one allreduce.
      sim_.charge_allreduce(all_ranks, 1.0);
    }

    const sim::Cost after_forward = sim_.ledger().critical();
    const sim::Cost fwd_delta = cost_delta(after_forward, before_forward);
    if (forward_span.active()) {
      forward_span.attr("crit_words_delta", fwd_delta.words);
      forward_span.attr("crit_msgs_delta", fwd_delta.msgs);
      forward_span.attr("crit_seconds_delta", fwd_delta.total_seconds());
    }
    forward_span.end();
    telemetry::count("mfbc.forward.words", fwd_delta.words);
    telemetry::count("mfbc.forward.msgs", fwd_delta.msgs);
    telemetry::count("mfbc.forward.seconds", fwd_delta.total_seconds());
    if (stats != nullptr) {
      stats->forward_cost += fwd_delta;
    }
    telemetry::Span backward_span("mfbc.backward");

    // ---- MFBr (Algorithm 2) ----
    // Lines 1–2: successor counting via Z ⊗ (Z •⟨⊗,g⟩ Aᵀ) with
    // Z(s,v) = (τ(s,v), 0, 1) on every reachable pair.
    {
      auto bins = dist::empty_bins<Centpath>(sl, n);
      support::parallel_for(
          static_cast<std::size_t>(sl.pr) * static_cast<std::size_t>(sl.pc),
          [&](std::size_t t) {
            const int i = static_cast<int>(t) / sl.pc;
            const int j = static_cast<int>(t) % sl.pc;
            auto& blk = batch.at(i, j);
            auto& bin = bins[t];
            for (vid_t s = blk.rows.lo; s < blk.rows.hi; ++s) {
              for (vid_t v = blk.cols.lo; v < blk.cols.hi; ++v) {
                const std::size_t at = blk.at(s, v);
                if (blk.dist[at] == kInfWeight) continue;
                bin.push(s - blk.rows.lo, v, Centpath{blk.dist[at], 0.0, 1.0});
              }
            }
          });
      for (int i = 0; i < sl.pr; ++i) {
        for (int j = 0; j < sl.pc; ++j) {
          auto& blk = batch.at(i, j);
          sim_.charge_compute(sl.rank_at(i, j),
                              static_cast<double>(blk.rows.size()) *
                                  static_cast<double>(blk.cols.size()));
        }
      }
      DistMatrix<Centpath> z0 =
          dist::from_blocks<Keep<Centpath>>(batch.nb(), n, sl, std::move(bins));
      const dist::Plan plan =
          plan_for(opts, "backward.count", "centpath",
                   static_cast<double>(z0.nnz()),
                   static_cast<double>(adj_t_.nnz()),
                   sim::sparse_entry_words<Centpath>());
      note_plan(plan);
      dist::DistSpgemmStats dst;
      DistMatrix<Centpath> pred = dist::spgemm<CentpathMonoid>(
          sim_, plan, z0, adj_t_, BrandesAction{}, sl, &dst, &adj_t_cache_);
      run_ops_.merge(dst);
      if (stats != nullptr) {
        stats->backward.total_ops += static_cast<nnz_t>(dst.total_ops);
      }
      support::parallel_for(
          static_cast<std::size_t>(sl.pr) * static_cast<std::size_t>(sl.pc),
          [&](std::size_t t) {
            const int i = static_cast<int>(t) / sl.pc;
            const int j = static_cast<int>(t) % sl.pc;
            auto& blk = batch.at(i, j);
            const auto& pb = pred.block(i, j);
            for (vid_t lr = 0; lr < pb.nrows(); ++lr) {
              const vid_t s = blk.rows.lo + lr;
              auto cols = pb.row_cols(lr);
              auto vals = pb.row_vals(lr);
              for (std::size_t x = 0; x < cols.size(); ++x) {
                const std::size_t at = blk.at(s, cols[x]);
                if (blk.dist[at] != kInfWeight && vals[x].w == blk.dist[at]) {
                  blk.counter[at] = vals[x].c;
                }
              }
            }
          });
      for (int i = 0; i < sl.pr; ++i) {
        for (int j = 0; j < sl.pc; ++j) {
          sim_.charge_compute(sl.rank_at(i, j),
                              static_cast<double>(pred.block(i, j).nnz()));
        }
      }
    }

    // Lines 3–4: initial frontier = the shortest-path-tree leaves.
    DistMatrix<Centpath> cfrontier;
    {
      auto bins = dist::empty_bins<Centpath>(sl, n);
      support::parallel_for(
          static_cast<std::size_t>(sl.pr) * static_cast<std::size_t>(sl.pc),
          [&](std::size_t t) {
            const int i = static_cast<int>(t) / sl.pc;
            const int j = static_cast<int>(t) % sl.pc;
            auto& blk = batch.at(i, j);
            auto& bin = bins[t];
            for (vid_t s = blk.rows.lo; s < blk.rows.hi; ++s) {
              const vid_t src = batch.source(s);
              for (vid_t v = blk.cols.lo; v < blk.cols.hi; ++v) {
                const std::size_t at = blk.at(s, v);
                if (v == src) {
                  blk.done[at] = 1;  // the root never joins a frontier
                  continue;
                }
                if (blk.dist[at] == kInfWeight) continue;
                if (blk.counter[at] == 0.0) {
                  blk.done[at] = 1;
                  bin.push(s - blk.rows.lo, v,
                           Centpath{blk.dist[at], 1.0 / blk.mult[at], -1.0});
                }
              }
            }
          });
      cfrontier = dist::from_blocks<Keep<Centpath>>(batch.nb(), n, sl, std::move(bins));
    }

    // Lines 5–12: back-propagation loop.
    while (cfrontier.nnz() > 0) {
      telemetry::count("mfbc.backward.iterations");
      telemetry::observe("mfbc.backward.frontier_nnz",
                         static_cast<double>(cfrontier.nnz()));
      const dist::Plan plan =
          plan_for(opts, "backward", "centpath",
                   static_cast<double>(cfrontier.nnz()),
                   static_cast<double>(adj_t_.nnz()),
                   sim::sparse_entry_words<Centpath>());
      note_plan(plan);
      dist::DistSpgemmStats dst;
      DistMatrix<Centpath> product = dist::spgemm<CentpathMonoid>(
          sim_, plan, cfrontier, adj_t_, BrandesAction{}, sl, &dst,
          &adj_t_cache_);
      run_ops_.merge(dst);
      if (stats != nullptr) {
        stats->backward.frontier_nnz.push_back(cfrontier.nnz());
        stats->backward.product_nnz.push_back(product.nnz());
        stats->backward.total_ops += static_cast<nnz_t>(dst.total_ops);
      }
      auto bins = dist::empty_bins<Centpath>(sl, n);
      support::parallel_for(
          static_cast<std::size_t>(sl.pr) * static_cast<std::size_t>(sl.pc),
          [&](std::size_t t) {
            const int i = static_cast<int>(t) / sl.pc;
            const int j = static_cast<int>(t) % sl.pc;
            auto& blk = batch.at(i, j);
            const auto& ub = product.block(i, j);
            auto& bin = bins[t];
            for (vid_t lr = 0; lr < ub.nrows(); ++lr) {
              const vid_t s = blk.rows.lo + lr;
              const vid_t src = batch.source(s);
              auto cols = ub.row_cols(lr);
              auto vals = ub.row_vals(lr);
              for (std::size_t x = 0; x < cols.size(); ++x) {
                const vid_t v = cols[x];
                const Centpath& cp = vals[x];
                const std::size_t at = blk.at(s, v);
                if (blk.dist[at] == kInfWeight || cp.w != blk.dist[at]) continue;
                blk.zeta[at] += cp.p;
                blk.counter[at] += cp.c;
                if (!blk.done[at] && blk.counter[at] == 0.0) {
                  blk.done[at] = 1;
                  if (v != src) {
                    bin.push(lr, v,
                             Centpath{blk.dist[at],
                                      1.0 / blk.mult[at] + blk.zeta[at], -1.0});
                  }
                }
              }
            }
          });
      for (int i = 0; i < sl.pr; ++i) {
        for (int j = 0; j < sl.pc; ++j) {
          sim_.charge_compute(sl.rank_at(i, j),
                              static_cast<double>(product.block(i, j).nnz()));
        }
      }
      cfrontier = dist::from_blocks<Keep<Centpath>>(batch.nb(), n, sl, std::move(bins));
      sim_.charge_allreduce(all_ranks, 1.0);
    }

    // Line 5 of Algorithm 3: λ(v) += Σ_s ζ(s,v)·σ̄(s,v), local partials.
    // Grid columns own disjoint λ ranges, so the parallel axis is j only;
    // the inner i loop stays serial and ascending so each λ(v) accumulates
    // its contributions in the serial floating-point order.
    support::parallel_for(
        static_cast<std::size_t>(sl.pc), [&](std::size_t jt) {
          const int j = static_cast<int>(jt);
          for (int i = 0; i < sl.pr; ++i) {
            auto& blk = batch.at(i, j);
            for (vid_t s = blk.rows.lo; s < blk.rows.hi; ++s) {
              const vid_t src = batch.source(s);
              for (vid_t v = blk.cols.lo; v < blk.cols.hi; ++v) {
                if (v == src) continue;
                const std::size_t at = blk.at(s, v);
                if (blk.dist[at] == kInfWeight) continue;
                lambda[static_cast<std::size_t>(v)] +=
                    blk.zeta[at] * blk.mult[at];
              }
            }
          }
        });
    for (int i = 0; i < sl.pr; ++i) {
      for (int j = 0; j < sl.pc; ++j) {
        auto& blk = batch.at(i, j);
        sim_.charge_compute(sl.rank_at(i, j),
                            static_cast<double>(blk.rows.size()) *
                                static_cast<double>(blk.cols.size()));
      }
    }
    const sim::Cost bwd_delta =
        cost_delta(sim_.ledger().critical(), after_forward);
    if (backward_span.active()) {
      backward_span.attr("crit_words_delta", bwd_delta.words);
      backward_span.attr("crit_msgs_delta", bwd_delta.msgs);
      backward_span.attr("crit_seconds_delta", bwd_delta.total_seconds());
    }
    backward_span.end();
    telemetry::count("mfbc.backward.words", bwd_delta.words);
    telemetry::count("mfbc.backward.msgs", bwd_delta.msgs);
    telemetry::count("mfbc.backward.seconds", bwd_delta.total_seconds());
    telemetry::count("mfbc.batches");
    if (stats != nullptr) {
      stats->backward_cost += bwd_delta;
      ++stats->batches;
    }
  }
}

}  // namespace mfbc::core
