#include "apps/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"
#include "support/error.hpp"

namespace mfbc::apps {

namespace {

using graph::vid_t;
using sparse::Coo;
using sparse::Csr;

/// BFS label: hop count + predecessor vertex. The monoid keeps the fewer
/// hops; ties prefer the smaller predecessor id (deterministic paths).
struct HopPred {
  double hops = std::numeric_limits<double>::infinity();
  vid_t pred = -1;

  friend bool operator==(const HopPred&, const HopPred&) = default;
};

struct HopMonoid {
  using value_type = HopPred;
  static value_type identity() { return {}; }
  static value_type combine(const value_type& a, const value_type& b) {
    if (a.hops != b.hops) return a.hops < b.hops ? a : b;
    return a.pred <= b.pred ? a : b;
  }
  static bool is_identity(const value_type& a) { return a.pred == -1; }
};

/// Extending the search by one residual arc keeps the *origin* vertex as
/// predecessor; the frontier value carries it, so no k-argument is needed.
struct StepAction {
  HopPred operator()(const HopPred& a, double /*capacity*/) const {
    return {a.hops + 1.0, a.pred};
  }
};

/// Residual capacities as an adjacency map (rebuilt into CSR per search).
class Residual {
 public:
  Residual(const graph::Graph& g) : n_(g.n()) {
    const auto& adj = g.adj();
    for (vid_t u = 0; u < n_; ++u) {
      auto cols = adj.row_cols(u);
      auto vals = adj.row_vals(u);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        cap_[key(u, cols[i])] += vals[i];
      }
    }
  }

  double capacity(vid_t u, vid_t v) const {
    auto it = cap_.find(key(u, v));
    return it == cap_.end() ? 0.0 : it->second;
  }

  void push_flow(vid_t u, vid_t v, double f) {
    cap_[key(u, v)] -= f;
    cap_[key(v, u)] += f;
  }

  Csr<double> to_csr() const {
    Coo<double> coo(n_, n_);
    for (const auto& [k, c] : cap_) {
      if (c > 0) {
        coo.push(static_cast<vid_t>(k >> 32),
                 static_cast<vid_t>(k & 0xffffffffu), c);
      }
    }
    struct Keep {
      using value_type = double;
      static value_type identity() { return 0.0; }
      static value_type combine(value_type a, value_type) { return a; }
      static bool is_identity(value_type) { return false; }
    };
    return Csr<double>::from_coo<Keep>(std::move(coo));
  }

 private:
  static std::uint64_t key(vid_t u, vid_t v) {
    return (static_cast<std::uint64_t>(u) << 32) |
           static_cast<std::uint32_t>(v);
  }

  vid_t n_;
  std::unordered_map<std::uint64_t, double> cap_;
};

}  // namespace

double max_flow(const graph::Graph& g, graph::vid_t s, graph::vid_t t,
                MaxFlowStats* stats) {
  const vid_t n = g.n();
  MFBC_CHECK(s >= 0 && s < n && t >= 0 && t < n, "endpoint out of range");
  MFBC_CHECK(s != t, "source and sink must differ");
  MFBC_CHECK(n < (vid_t{1} << 32), "max_flow limit: n < 2^32");

  Residual residual(g);
  double total = 0;

  while (true) {
    // Algebraic BFS over the residual graph: frontier is a 1×n row of
    // HopPred values; one product per level.
    const Csr<double> rcsr = residual.to_csr();
    std::vector<vid_t> pred(static_cast<std::size_t>(n), -1);
    pred[static_cast<std::size_t>(s)] = s;
    std::vector<sparse::nnz_t> rowptr{0, 1};
    std::vector<vid_t> col{s};
    std::vector<HopPred> val{{0.0, s}};
    Csr<HopPred> frontier(1, n, std::move(rowptr), std::move(col),
                          std::move(val));
    bool reached = false;
    while (frontier.nnz() > 0 && !reached) {
      auto product = sparse::spgemm<HopMonoid>(frontier, rcsr, StepAction{});
      if (stats != nullptr) ++stats->bfs_products;
      std::vector<vid_t> ncol;
      std::vector<HopPred> nval;
      auto cols = product.row_cols(0);
      auto vals = product.row_vals(0);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const vid_t v = cols[i];
        if (pred[static_cast<std::size_t>(v)] != -1) continue;
        pred[static_cast<std::size_t>(v)] = vals[i].pred;
        if (v == t) {
          reached = true;
          break;
        }
        ncol.push_back(v);
        nval.push_back({vals[i].hops, v});  // re-encode: next hop's pred is v
      }
      std::vector<sparse::nnz_t> nrowptr{0,
                                         static_cast<sparse::nnz_t>(ncol.size())};
      frontier = Csr<HopPred>(1, n, std::move(nrowptr), std::move(ncol),
                              std::move(nval));
    }
    if (!reached) break;

    // Walk the predecessor chain, find the bottleneck, push the flow.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (vid_t v = t; v != s; v = pred[static_cast<std::size_t>(v)]) {
      bottleneck = std::min(
          bottleneck, residual.capacity(pred[static_cast<std::size_t>(v)], v));
    }
    MFBC_CHECK(bottleneck > 0, "augmenting path without residual capacity");
    for (vid_t v = t; v != s; v = pred[static_cast<std::size_t>(v)]) {
      residual.push_flow(pred[static_cast<std::size_t>(v)], v, bottleneck);
    }
    total += bottleneck;
    if (stats != nullptr) ++stats->augmenting_paths;
  }
  return total;
}

}  // namespace mfbc::apps
