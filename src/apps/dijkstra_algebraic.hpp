// Algebraic Dijkstra — the frontier-selection strategy MFBC argues against.
//
// §4.2.3: "this scheme is much faster than using Dijkstra's algorithm to
// compute shortest-paths, since it requires the same number of iterations as
// Bellman Ford (Dijkstra's algorithm requires n − 1 matrix multiplications)."
//
// A matrix-formulated Dijkstra may only relax vertices whose distance is
// *settled* (provably final): per iteration, the unsettled vertices holding
// the minimum tentative distance. That keeps the work optimal but serializes
// the traversal — the frontier per iteration is tiny and the iteration count
// approaches the number of distinct distance values (up to n−1), each one a
// bulk-synchronous matrix multiplication. MFBF instead relaxes the *maximal*
// frontier (every vertex whose information changed), completing in
// amplified-diameter iterations at the price of some repeated relaxations.
//
// This module implements the settled-frontier scheme with the same sparse
// kernels so the two strategies' iteration/operation counts are directly
// comparable (bench_ablate_frontier reproduces the paper's argument).
#pragma once

#include <span>
#include <vector>

#include "apps/traversal.hpp"

namespace mfbc::apps {

struct FrontierCost {
  int iterations = 0;          ///< bulk-synchronous multiplications
  sparse::nnz_t total_ops = 0; ///< nonzero products over all iterations
  sparse::nnz_t frontier_nnz_total = 0;
};

/// Batched shortest paths with settled (Dijkstra) frontiers. Results equal
/// sssp_batch(); `cost` (optional) receives the iteration/work counters.
std::vector<Weight> sssp_batch_dijkstra(const Graph& g,
                                        std::span<const vid_t> sources,
                                        FrontierCost* cost = nullptr);

/// The same counters for the maximal-frontier (MFBF-style) strategy, so the
/// two can be printed side by side.
std::vector<Weight> sssp_batch_maximal(const Graph& g,
                                       std::span<const vid_t> sources,
                                       FrontierCost* cost = nullptr);

}  // namespace mfbc::apps
