// BC-as-a-service front-end (docs/serving.md).
//
// A deterministic in-process request loop — library plus CLI driver
// (tools/bc_server_cli.cpp), no sockets — serving concurrent top-k and
// per-vertex centrality queries against the freshest *complete* published
// version while the next version computes:
//
//   * Publication: apply() runs the incremental engine (serve/incremental),
//     then atomically swaps in a new Served snapshot. Queries never observe
//     a partially recomputed λ — they copy the current snapshot pointer
//     under a lock and answer entirely from that immutable object.
//   * Freshness: an answer carries the version it was computed against,
//     which is always >= the latest version published at the instant the
//     query started. The stale_answers counter (pinned 0 by the serve-smoke
//     TSan job) counts violations.
//   * Caching: top-k results are cached per (version, k) *inside* the
//     Served snapshot, so publishing a version invalidates the previous
//     cache by construction — there is no invalidation step to forget.
//     Cached and freshly computed answers are byte-identical because
//     core::top_k breaks score ties by vertex id.
//   * Batching: submit() answers a whole request batch against one
//     snapshot, so a batch sees a single consistent version.
//
// Telemetry: serve.* spans/counters plus a private latency histogram
// (always compiled, unlike the global registry) feeding the p50/p95 figures
// in json().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mfbc/adaptive.hpp"
#include "mfbc/ranking.hpp"
#include "serve/incremental.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"

namespace mfbc::serve {

enum class QueryKind { kTopK, kVertex };

struct Query {
  QueryKind kind = QueryKind::kTopK;
  std::size_t k = 10;         ///< top-k size (kTopK)
  graph::vid_t vertex = 0;    ///< vertex id (kVertex)

  static Query top_k(std::size_t k) {
    Query q;
    q.kind = QueryKind::kTopK;
    q.k = k;
    return q;
  }
  static Query centrality(graph::vid_t v) {
    Query q;
    q.kind = QueryKind::kVertex;
    q.vertex = v;
    return q;
  }
};

struct Answer {
  QueryKind kind = QueryKind::kTopK;
  std::uint64_t version = 0;  ///< the complete version this was served from
  bool from_cache = false;
  double latency_us = 0;
  std::vector<core::RankedVertex> top;  ///< kTopK payload
  double score = 0;                     ///< kVertex payload
  /// Approximate-serving guarantee metadata (ApproxServeOptions). When
  /// approximate, the score is the (ε,δ)-sampled estimate and — for kVertex
  /// queries — [ci_lower, ci_upper] brackets it; guarantee_met says whether
  /// the published version's sampler certified the (eps, delta) guarantee.
  bool approximate = false;
  double eps = 0;
  double delta = 0;
  bool guarantee_met = false;
  double ci_lower = 0;  ///< kVertex payload (λ units)
  double ci_upper = 0;  ///< kVertex payload (λ units)
};

/// Approximate serving mode (docs/approximation.md): every published
/// version is an adaptive (ε,δ)-sampled recompute on the distributed engine
/// instead of the exact incremental splice. Each publish re-runs the
/// sampler with the same seed on the mutated graph — deterministic in
/// (seed, version) — and serves λ̂ with per-vertex confidence intervals;
/// query answers carry the guarantee.
struct ApproxServeOptions {
  bool enabled = false;
  double eps = 0.25;
  double delta = 0.1;
  std::uint64_t seed = 1;
};

struct ServerOptions {
  IncrementalOptions compute;
  ApproxServeOptions approx;
};

class BcServer {
 public:
  /// Computes and publishes version 0 before returning: the server is
  /// always queryable.
  explicit BcServer(graph::Graph base, ServerOptions opts = {});

  /// Thread-safe query entry points.
  Answer top_k(std::size_t k);
  Answer centrality(graph::vid_t v);
  /// Answer a request batch against one snapshot (a single consistent
  /// version for the whole batch).
  std::vector<Answer> submit(const std::vector<Query>& queries);

  /// Apply a mutation batch and publish the new version. Serialized
  /// internally; concurrent queries keep serving the previous version
  /// until the swap. Throws (graph/mutate.hpp errors) without publishing
  /// on an invalid batch.
  RecomputeReport apply(const graph::MutationBatch& batch);

  /// The latest published (complete) version.
  std::uint64_t version() const;
  graph::vid_t n() const { return n_; }

  /// Engine views for the mutator thread — the thread that calls apply(),
  /// e.g. to build the next mutation batch against the current topology.
  /// Queries must go through the published snapshot instead.
  const graph::Graph& current_graph() const {
    return approx_.enabled ? avg_.graph() : engine_->versioned().graph();
  }
  int total_batches() const {
    return approx_.enabled ? last_approx_.batches : engine_->total_batches();
  }
  bool approximate() const { return approx_.enabled; }

  std::uint64_t queries() const { return queries_.load(); }
  std::uint64_t cache_hits() const { return cache_hits_.load(); }
  std::uint64_t cache_misses() const { return cache_misses_.load(); }
  /// Answers that observed a version older than the one published when the
  /// query started. 0 by construction; pinned by tests and CI.
  std::uint64_t stale_answers() const { return stale_.load(); }
  std::uint64_t versions_published() const { return published_count_.load(); }

  /// The --json artifact's `serve` block: query/cache/publication counters,
  /// recompute totals, the affected-region bound, p50/p95 query latency.
  telemetry::Json json() const;

 private:
  struct Served {
    std::uint64_t version = 0;
    std::vector<double> lambda;
    /// Approximate-mode payload: per-vertex CI endpoints (λ units) plus the
    /// sampler outcome the answers echo. Empty/false in exact mode.
    std::vector<double> ci_lower;
    std::vector<double> ci_upper;
    bool approximate = false;
    double eps = 0;
    double delta = 0;
    std::uint64_t samples = 0;
    std::string stop_reason;
    bool guarantee_met = false;
    /// Version-keyed top-k cache; lives inside the snapshot so publishing
    /// the next version invalidates it structurally.
    mutable std::mutex mu;
    mutable std::vector<std::pair<std::size_t,
                                  std::vector<core::RankedVertex>>> topk;
  };

  std::shared_ptr<const Served> snapshot() const;
  void publish();
  Answer answer_one(const Served& s, const Query& q,
                    std::uint64_t floor_version);
  /// Approximate mode: full (ε,δ)-sampled recompute of the current graph
  /// version on a fresh simulated machine. Returns the modelled seconds.
  double recompute_approx();

  graph::vid_t n_ = 0;
  std::mutex engine_mu_;  ///< serializes apply() against itself
  std::unique_ptr<IncrementalBc> engine_;
  /// Approximate-mode state (engine_ stays null): the versioned graph the
  /// mutator sees and the last sampler outcome, both guarded by engine_mu_.
  ApproxServeOptions approx_;
  IncrementalOptions compute_;
  graph::VersionedGraph avg_;
  core::AdaptiveSampleResult last_approx_;

  mutable std::mutex pub_mu_;  ///< guards published_
  std::shared_ptr<const Served> published_;

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> topk_queries_{0};
  std::atomic<std::uint64_t> vertex_queries_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> stale_{0};
  std::atomic<std::uint64_t> published_count_{0};
  std::atomic<std::uint64_t> incremental_recomputes_{0};
  std::atomic<std::uint64_t> full_recomputes_{0};
  std::atomic<std::uint64_t> batches_rerun_{0};
  std::atomic<std::uint64_t> affected_bound_{0};
  /// Private registry for query latencies: the global one is compiled out
  /// under MFBC_TELEMETRY=0 but the serve block must always carry p50/p95.
  mutable telemetry::Registry latency_;
};

}  // namespace mfbc::serve
