// PageRank over the generalized-product kernels — another instance of the
// paper's extensibility methodology (§8), this time with the plain numeric
// (+,×) structure: each power-iteration step is one generalized product of
// the rank row vector with the out-degree-normalized adjacency matrix.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mfbc::apps {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-12;  ///< L1 change per iteration to stop at
  int max_iterations = 200;
};

struct PageRankResult {
  std::vector<double> rank;  ///< sums to 1 over all vertices
  int iterations = 0;
  double residual = 0;  ///< final L1 change
};

/// PageRank with uniform teleportation; dangling vertices redistribute
/// their mass uniformly. Edge weights are ignored (link analysis uses the
/// link structure), matching the classic formulation.
PageRankResult pagerank(const graph::Graph& g,
                        const PageRankOptions& opts = {});

}  // namespace mfbc::apps
