#include "apps/bc_server.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/timer.hpp"
#include "telemetry/span.hpp"

namespace mfbc::serve {

BcServer::BcServer(graph::Graph base, ServerOptions opts)
    : n_(base.n()), approx_(opts.approx), compute_(opts.compute) {
  if (approx_.enabled) {
    avg_ = graph::VersionedGraph(std::move(base));
    recompute_approx();
  } else {
    engine_ = std::make_unique<IncrementalBc>(std::move(base),
                                              std::move(opts.compute));
  }
  publish();
}

double BcServer::recompute_approx() {
  // Called with engine_mu_ held (or from the constructor). A fresh
  // simulated machine per publish: the sampled recompute is a from-scratch
  // run on the current graph version, deterministic in (seed, version) —
  // there is no incremental splice because spliced deltas would invalidate
  // the batch-mean moments behind the confidence intervals.
  const graph::Graph& g = avg_.graph();
  sim::Sim sim(compute_.ranks, compute_.machine);
  core::DistMfbc engine(sim, g);
  core::AdaptiveSamplerOptions aopts;
  aopts.eps = approx_.eps;
  aopts.delta = approx_.delta;
  aopts.seed = approx_.seed;
  aopts.batch_size = compute_.batch_size;
  aopts.graph_sig = avg_.signature();
  last_approx_ = core::run_adaptive_bc(
      g.n(), aopts,
      [&](const std::vector<graph::vid_t>& srcs,
          const core::BatchRunOptions::BatchObserver& ob, bool resume) {
        core::DistMfbcOptions ropts;
        ropts.batch_size = compute_.batch_size;
        ropts.plan_mode = compute_.plan_mode;
        ropts.replication_c = compute_.replication_c;
        ropts.sources = srcs;
        ropts.on_batch = ob;
        ropts.resume = resume;
        ropts.graph_signature = avg_.signature();
        return engine.run(ropts);
      });
  telemetry::count("serve.approx_recomputes");
  telemetry::gauge("serve.approx_samples",
                   static_cast<double>(last_approx_.samples_used));
  return sim.ledger().critical().total_seconds();
}

std::shared_ptr<const BcServer::Served> BcServer::snapshot() const {
  std::lock_guard<std::mutex> lock(pub_mu_);
  return published_;
}

void BcServer::publish() {
  // Called with engine_mu_ held (or from the constructor): the engine's λ
  // is complete for the engine's current version. Build the immutable
  // snapshot first, swap the pointer last — a reader either sees the old
  // complete version or the new one, never a partial λ.
  auto served = std::make_shared<Served>();
  if (approx_.enabled) {
    served->version = avg_.version();
    served->lambda = last_approx_.lambda;
    served->ci_lower = last_approx_.ci_lower;
    served->ci_upper = last_approx_.ci_upper;
    served->approximate = true;
    served->eps = approx_.eps;
    served->delta = approx_.delta;
    served->samples = static_cast<std::uint64_t>(last_approx_.samples_used);
    served->stop_reason = core::adaptive_stop_name(last_approx_.stop_reason);
    served->guarantee_met = last_approx_.guarantee_met;
  } else {
    served->version = engine_->version();
    served->lambda = engine_->lambda();
  }
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    published_ = std::move(served);
  }
  published_count_.fetch_add(1);
  telemetry::count("serve.publish");
}

std::uint64_t BcServer::version() const {
  std::lock_guard<std::mutex> lock(pub_mu_);
  return published_ == nullptr ? 0 : published_->version;
}

Answer BcServer::answer_one(const Served& s, const Query& q,
                            std::uint64_t floor_version) {
  WallTimer timer;
  Answer a;
  a.kind = q.kind;
  a.version = s.version;
  queries_.fetch_add(1);
  if (q.kind == QueryKind::kTopK) {
    topk_queries_.fetch_add(1);
    std::lock_guard<std::mutex> lock(s.mu);
    bool hit = false;
    for (const auto& [k, top] : s.topk) {
      if (k == q.k) {
        a.top = top;
        hit = true;
        break;
      }
    }
    if (hit) {
      cache_hits_.fetch_add(1);
      a.from_cache = true;
    } else {
      cache_misses_.fetch_add(1);
      a.top = core::top_k(s.lambda, q.k);
      s.topk.emplace_back(q.k, a.top);
    }
  } else {
    vertex_queries_.fetch_add(1);
    MFBC_CHECK(q.vertex >= 0 && q.vertex < n_,
               "serve: query vertex out of range [0, " + std::to_string(n_) +
                   "): " + std::to_string(q.vertex));
    a.score = s.lambda[static_cast<std::size_t>(q.vertex)];
    if (s.approximate) {
      a.ci_lower = s.ci_lower[static_cast<std::size_t>(q.vertex)];
      a.ci_upper = s.ci_upper[static_cast<std::size_t>(q.vertex)];
    }
  }
  if (s.approximate) {
    // The guarantee rides with every answer: the client knows it got an
    // (ε,δ) estimate, from which version, and whether it was certified.
    a.approximate = true;
    a.eps = s.eps;
    a.delta = s.delta;
    a.guarantee_met = s.guarantee_met;
  }
  if (s.version < floor_version) {
    // Impossible by construction (publish only moves forward and a reader
    // copies the snapshot *after* reading the floor); counted rather than
    // asserted so the serve-smoke job can pin it to zero end to end.
    stale_.fetch_add(1);
    telemetry::count("serve.stale_answers");
  }
  a.latency_us = timer.seconds() * 1e6;
  latency_.observe("serve.query_us", a.latency_us);
  telemetry::observe("serve.query_us", a.latency_us);
  return a;
}

Answer BcServer::top_k(std::size_t k) {
  telemetry::Span span("serve.query");
  const std::uint64_t floor = version();
  auto s = snapshot();
  return answer_one(*s, Query::top_k(k), floor);
}

Answer BcServer::centrality(graph::vid_t v) {
  telemetry::Span span("serve.query");
  const std::uint64_t floor = version();
  auto s = snapshot();
  return answer_one(*s, Query::centrality(v), floor);
}

std::vector<Answer> BcServer::submit(const std::vector<Query>& queries) {
  telemetry::Span span("serve.batch");
  span.attr("queries", static_cast<std::int64_t>(queries.size()));
  telemetry::count("serve.batches");
  const std::uint64_t floor = version();
  // One snapshot for the whole batch: every answer shares a version.
  auto s = snapshot();
  std::vector<Answer> answers;
  answers.reserve(queries.size());
  for (const Query& q : queries) {
    answers.push_back(answer_one(*s, q, floor));
  }
  return answers;
}

RecomputeReport BcServer::apply(const graph::MutationBatch& batch) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  if (approx_.enabled) {
    avg_ = avg_.apply(batch);
    RecomputeReport rep;
    rep.version = avg_.version();
    rep.signature = avg_.signature();
    rep.incremental = false;
    rep.reason = "approx";
    rep.modelled_seconds = recompute_approx();
    rep.total_batches = last_approx_.batches;
    rep.affected_batches = last_approx_.batches;
    rep.batches_rerun = last_approx_.batches;
    rep.affected_fraction = 1.0;
    full_recomputes_.fetch_add(1);
    batches_rerun_.fetch_add(static_cast<std::uint64_t>(rep.batches_rerun));
    affected_bound_.fetch_add(
        static_cast<std::uint64_t>(rep.affected_batches));
    publish();
    return rep;
  }
  const RecomputeReport rep = engine_->apply(batch);
  if (rep.incremental) {
    incremental_recomputes_.fetch_add(1);
  } else {
    full_recomputes_.fetch_add(1);
  }
  batches_rerun_.fetch_add(static_cast<std::uint64_t>(rep.batches_rerun));
  affected_bound_.fetch_add(
      static_cast<std::uint64_t>(rep.affected_batches));
  publish();
  return rep;
}

telemetry::Json BcServer::json() const {
  telemetry::Json j = telemetry::Json::object();
  j["queries"] = telemetry::Json(
      static_cast<std::int64_t>(queries_.load()));
  j["topk_queries"] = telemetry::Json(
      static_cast<std::int64_t>(topk_queries_.load()));
  j["vertex_queries"] = telemetry::Json(
      static_cast<std::int64_t>(vertex_queries_.load()));
  j["cache_hits"] = telemetry::Json(
      static_cast<std::int64_t>(cache_hits_.load()));
  j["cache_misses"] = telemetry::Json(
      static_cast<std::int64_t>(cache_misses_.load()));
  j["stale_answers"] = telemetry::Json(
      static_cast<std::int64_t>(stale_.load()));
  j["versions_published"] = telemetry::Json(
      static_cast<std::int64_t>(published_count_.load()));
  j["incremental_recomputes"] = telemetry::Json(
      static_cast<std::int64_t>(incremental_recomputes_.load()));
  j["full_recomputes"] = telemetry::Json(
      static_cast<std::int64_t>(full_recomputes_.load()));
  j["batches_rerun"] = telemetry::Json(
      static_cast<std::int64_t>(batches_rerun_.load()));
  j["affected_bound"] = telemetry::Json(
      static_cast<std::int64_t>(affected_bound_.load()));
  const telemetry::HistStats lat = latency_.histogram("serve.query_us");
  j["p50_us"] = telemetry::Json(lat.percentile(50));
  j["p95_us"] = telemetry::Json(lat.percentile(95));
  if (approx_.enabled) {
    // Report from the published snapshot, not the engine-side state: json()
    // may race with a concurrent apply(), and the snapshot is immutable.
    const auto s = snapshot();
    telemetry::Json ax = telemetry::Json::object();
    ax["eps"] = telemetry::Json(s->eps);
    ax["delta"] = telemetry::Json(s->delta);
    ax["seed"] = telemetry::Json(static_cast<std::int64_t>(approx_.seed));
    ax["samples"] = telemetry::Json(static_cast<std::int64_t>(s->samples));
    ax["stop_reason"] = telemetry::Json(s->stop_reason);
    ax["guarantee_met"] = telemetry::Json(s->guarantee_met);
    std::vector<double> widths(s->lambda.size(), 0.0);
    for (std::size_t v = 0; v < widths.size(); ++v) {
      widths[v] = s->ci_upper[v] - s->ci_lower[v];
    }
    telemetry::Registry wreg;
    for (double w : widths) wreg.observe("w", w);
    const telemetry::HistStats ws = wreg.histogram("w");
    telemetry::Json ci = telemetry::Json::object();
    ci["p50"] = telemetry::Json(ws.percentile(50));
    ci["p95"] = telemetry::Json(ws.percentile(95));
    ci["max"] = telemetry::Json(ws.max);
    ax["ci_width"] = std::move(ci);
    j["approx"] = std::move(ax);
  }
  return j;
}

}  // namespace mfbc::serve
