#include "apps/bc_server.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/timer.hpp"
#include "telemetry/span.hpp"

namespace mfbc::serve {

BcServer::BcServer(graph::Graph base, ServerOptions opts)
    : n_(base.n()),
      engine_(std::make_unique<IncrementalBc>(std::move(base),
                                              std::move(opts.compute))) {
  publish();
}

std::shared_ptr<const BcServer::Served> BcServer::snapshot() const {
  std::lock_guard<std::mutex> lock(pub_mu_);
  return published_;
}

void BcServer::publish() {
  // Called with engine_mu_ held (or from the constructor): the engine's λ
  // is complete for the engine's current version. Build the immutable
  // snapshot first, swap the pointer last — a reader either sees the old
  // complete version or the new one, never a partial λ.
  auto served = std::make_shared<Served>();
  served->version = engine_->version();
  served->lambda = engine_->lambda();
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    published_ = std::move(served);
  }
  published_count_.fetch_add(1);
  telemetry::count("serve.publish");
}

std::uint64_t BcServer::version() const {
  std::lock_guard<std::mutex> lock(pub_mu_);
  return published_ == nullptr ? 0 : published_->version;
}

Answer BcServer::answer_one(const Served& s, const Query& q,
                            std::uint64_t floor_version) {
  WallTimer timer;
  Answer a;
  a.kind = q.kind;
  a.version = s.version;
  queries_.fetch_add(1);
  if (q.kind == QueryKind::kTopK) {
    topk_queries_.fetch_add(1);
    std::lock_guard<std::mutex> lock(s.mu);
    bool hit = false;
    for (const auto& [k, top] : s.topk) {
      if (k == q.k) {
        a.top = top;
        hit = true;
        break;
      }
    }
    if (hit) {
      cache_hits_.fetch_add(1);
      a.from_cache = true;
    } else {
      cache_misses_.fetch_add(1);
      a.top = core::top_k(s.lambda, q.k);
      s.topk.emplace_back(q.k, a.top);
    }
  } else {
    vertex_queries_.fetch_add(1);
    MFBC_CHECK(q.vertex >= 0 && q.vertex < n_,
               "serve: query vertex out of range [0, " + std::to_string(n_) +
                   "): " + std::to_string(q.vertex));
    a.score = s.lambda[static_cast<std::size_t>(q.vertex)];
  }
  if (s.version < floor_version) {
    // Impossible by construction (publish only moves forward and a reader
    // copies the snapshot *after* reading the floor); counted rather than
    // asserted so the serve-smoke job can pin it to zero end to end.
    stale_.fetch_add(1);
    telemetry::count("serve.stale_answers");
  }
  a.latency_us = timer.seconds() * 1e6;
  latency_.observe("serve.query_us", a.latency_us);
  telemetry::observe("serve.query_us", a.latency_us);
  return a;
}

Answer BcServer::top_k(std::size_t k) {
  telemetry::Span span("serve.query");
  const std::uint64_t floor = version();
  auto s = snapshot();
  return answer_one(*s, Query::top_k(k), floor);
}

Answer BcServer::centrality(graph::vid_t v) {
  telemetry::Span span("serve.query");
  const std::uint64_t floor = version();
  auto s = snapshot();
  return answer_one(*s, Query::centrality(v), floor);
}

std::vector<Answer> BcServer::submit(const std::vector<Query>& queries) {
  telemetry::Span span("serve.batch");
  span.attr("queries", static_cast<std::int64_t>(queries.size()));
  telemetry::count("serve.batches");
  const std::uint64_t floor = version();
  // One snapshot for the whole batch: every answer shares a version.
  auto s = snapshot();
  std::vector<Answer> answers;
  answers.reserve(queries.size());
  for (const Query& q : queries) {
    answers.push_back(answer_one(*s, q, floor));
  }
  return answers;
}

RecomputeReport BcServer::apply(const graph::MutationBatch& batch) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  const RecomputeReport rep = engine_->apply(batch);
  if (rep.incremental) {
    incremental_recomputes_.fetch_add(1);
  } else {
    full_recomputes_.fetch_add(1);
  }
  batches_rerun_.fetch_add(static_cast<std::uint64_t>(rep.batches_rerun));
  affected_bound_.fetch_add(
      static_cast<std::uint64_t>(rep.affected_batches));
  publish();
  return rep;
}

telemetry::Json BcServer::json() const {
  telemetry::Json j = telemetry::Json::object();
  j["queries"] = telemetry::Json(
      static_cast<std::int64_t>(queries_.load()));
  j["topk_queries"] = telemetry::Json(
      static_cast<std::int64_t>(topk_queries_.load()));
  j["vertex_queries"] = telemetry::Json(
      static_cast<std::int64_t>(vertex_queries_.load()));
  j["cache_hits"] = telemetry::Json(
      static_cast<std::int64_t>(cache_hits_.load()));
  j["cache_misses"] = telemetry::Json(
      static_cast<std::int64_t>(cache_misses_.load()));
  j["stale_answers"] = telemetry::Json(
      static_cast<std::int64_t>(stale_.load()));
  j["versions_published"] = telemetry::Json(
      static_cast<std::int64_t>(published_count_.load()));
  j["incremental_recomputes"] = telemetry::Json(
      static_cast<std::int64_t>(incremental_recomputes_.load()));
  j["full_recomputes"] = telemetry::Json(
      static_cast<std::int64_t>(full_recomputes_.load()));
  j["batches_rerun"] = telemetry::Json(
      static_cast<std::int64_t>(batches_rerun_.load()));
  j["affected_bound"] = telemetry::Json(
      static_cast<std::int64_t>(affected_bound_.load()));
  const telemetry::HistStats lat = latency_.histogram("serve.query_us");
  j["p50_us"] = telemetry::Json(lat.percentile(50));
  j["p95_us"] = telemetry::Json(lat.percentile(95));
  return j;
}

}  // namespace mfbc::serve
