// Triangle counting and clustering coefficients via the masked product
// (A·A) ∘ A — the canonical "graph algorithm as sparse linear algebra"
// kernel alongside BFS (§2.3) and a further instance of the paper's
// methodology: the count semiring for the product, an intersection mask for
// the wedge-closure test.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mfbc::apps {

/// Number of triangles (3-cycles) in the undirected graph. Directed graphs
/// are symmetrized first (a triangle = a closed triple ignoring direction).
std::uint64_t count_triangles(const graph::Graph& g);

/// Per-vertex triangle counts (each triangle contributes 1 to each corner).
std::vector<std::uint64_t> triangles_per_vertex(const graph::Graph& g);

/// Local clustering coefficients: triangles(v) / (deg(v) choose 2), zero
/// for degree < 2. Computed on the symmetrized graph.
std::vector<double> clustering_coefficients(const graph::Graph& g);

}  // namespace mfbc::apps
