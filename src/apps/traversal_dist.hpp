// Distributed batched shortest paths on the simulated machine — the
// §2.3 tropical-monoid traversal running through the same autotuned
// distributed SpGEMM layer as MFBC. Demonstrates that the §5.2/§6.2
// machinery is algorithm-agnostic: swapping the monoid and bridge function
// is all it takes to get a new distributed graph algorithm.
#pragma once

#include <span>
#include <vector>

#include "apps/traversal.hpp"
#include "sim/comm.hpp"

namespace mfbc::apps {

/// Distances from each of `sources` (dense nb×n row-major, ∞ unreachable),
/// computed with distributed frontier relaxations on sim's ranks. Matches
/// sssp_batch() exactly; communication is charged to sim's ledger.
std::vector<Weight> sssp_batch_dist(sim::Sim& sim, const Graph& g,
                                    std::span<const vid_t> sources);

/// Distributed harmonic closeness (batched over sim's ranks); matches
/// harmonic_closeness() exactly.
std::vector<double> harmonic_closeness_dist(sim::Sim& sim, const Graph& g,
                                            const ClosenessOptions& opts = {});

}  // namespace mfbc::apps
