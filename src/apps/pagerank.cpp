#include "apps/pagerank.hpp"

#include <cmath>

#include "algebra/tropical.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm.hpp"
#include "support/error.hpp"

namespace mfbc::apps {

namespace {

using algebra::SumMonoid;
using graph::vid_t;
using sparse::Csr;

struct Times {
  double operator()(double a, double b) const { return a * b; }
};

}  // namespace

PageRankResult pagerank(const graph::Graph& g, const PageRankOptions& opts) {
  MFBC_CHECK(opts.damping > 0 && opts.damping < 1, "damping must be in (0,1)");
  MFBC_CHECK(opts.max_iterations >= 1, "need at least one iteration");
  const vid_t n = g.n();
  PageRankResult result;
  if (n == 0) return result;

  // Row-stochastic link matrix: W(u,v) = 1/outdeg(u) for each edge u→v.
  const Csr<double> w = sparse::map_values<double>(
      g.adj(), [&](vid_t u, vid_t, double) {
        return 1.0 / static_cast<double>(g.out_degree(u));
      });

  const double d = opts.damping;
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> x(static_cast<std::size_t>(n), uniform);

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // One generalized product: contribution(v) = Σ_u x(u)·W(u,v). The rank
    // vector rides as a 1×n sparse row (dense in practice).
    std::vector<sparse::nnz_t> rowptr{0, static_cast<sparse::nnz_t>(n)};
    std::vector<vid_t> col(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) col[static_cast<std::size_t>(v)] = v;
    Csr<double> xrow(1, n, std::move(rowptr), std::move(col), x);
    const Csr<double> contrib = sparse::spgemm<SumMonoid>(xrow, w, Times{});

    // Dangling vertices (no out-links) spread their mass uniformly.
    double dangling = 0;
    for (vid_t u = 0; u < n; ++u) {
      if (g.out_degree(u) == 0) dangling += x[static_cast<std::size_t>(u)];
    }
    const double base = (1.0 - d) * uniform + d * dangling * uniform;

    std::vector<double> next(static_cast<std::size_t>(n), base);
    auto cols = contrib.row_cols(0);
    auto vals = contrib.row_vals(0);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      next[static_cast<std::size_t>(cols[i])] += d * vals[i];
    }

    double delta = 0;
    for (vid_t v = 0; v < n; ++v) {
      delta += std::abs(next[static_cast<std::size_t>(v)] -
                        x[static_cast<std::size_t>(v)]);
    }
    x = std::move(next);
    result.iterations = iter + 1;
    result.residual = delta;
    if (delta < opts.tolerance) break;
  }
  result.rank = std::move(x);
  return result;
}

}  // namespace mfbc::apps
