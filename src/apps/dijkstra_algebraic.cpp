#include "apps/dijkstra_algebraic.hpp"

#include <algorithm>
#include <limits>

#include "sparse/spgemm.hpp"
#include "support/error.hpp"

namespace mfbc::apps {

namespace {

using algebra::kInfWeight;
using algebra::TropicalMinMonoid;
using sparse::Csr;
using sparse::nnz_t;

struct Extend {
  Weight operator()(Weight a, Weight b) const { return a + b; }
};

struct State {
  vid_t nb = 0;
  vid_t n = 0;
  std::vector<Weight> dist;

  State(vid_t nb_, vid_t n_) : nb(nb_), n(n_) {
    dist.assign(static_cast<std::size_t>(nb) * static_cast<std::size_t>(n),
                kInfWeight);
  }
  Weight& at(vid_t s, vid_t v) {
    return dist[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
  }
};

Csr<Weight> frontier_from_entries(vid_t nb, vid_t n,
                                  const std::vector<std::vector<std::pair<vid_t, Weight>>>& rows) {
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(nb) + 1, 0);
  std::vector<vid_t> col;
  std::vector<Weight> val;
  for (vid_t s = 0; s < nb; ++s) {
    for (const auto& [v, w] : rows[static_cast<std::size_t>(s)]) {
      col.push_back(v);
      val.push_back(w);
    }
    rowptr[static_cast<std::size_t>(s) + 1] = static_cast<nnz_t>(col.size());
  }
  return Csr<Weight>(nb, n, std::move(rowptr), std::move(col), std::move(val));
}

}  // namespace

std::vector<Weight> sssp_batch_dijkstra(const Graph& g,
                                        std::span<const vid_t> sources,
                                        FrontierCost* cost) {
  const vid_t n = g.n();
  const auto nb = static_cast<vid_t>(sources.size());
  State st(nb, n);
  std::vector<std::vector<char>> settled(
      static_cast<std::size_t>(nb),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (vid_t s = 0; s < nb; ++s) {
    MFBC_CHECK(sources[static_cast<std::size_t>(s)] >= 0 &&
                   sources[static_cast<std::size_t>(s)] < n,
               "source out of range");
    st.at(s, sources[static_cast<std::size_t>(s)]) = 0.0;
  }

  // Per iteration: settle, for every batch row, the unsettled vertices at
  // that row's minimum tentative distance, and relax exactly their edges
  // with one generalized product.
  while (true) {
    std::vector<std::vector<std::pair<vid_t, Weight>>> rows(
        static_cast<std::size_t>(nb));
    bool any = false;
    for (vid_t s = 0; s < nb; ++s) {
      Weight lo = kInfWeight;
      for (vid_t v = 0; v < n; ++v) {
        if (!settled[static_cast<std::size_t>(s)][static_cast<std::size_t>(v)]) {
          lo = std::min(lo, st.at(s, v));
        }
      }
      if (lo == kInfWeight) continue;
      for (vid_t v = 0; v < n; ++v) {
        if (!settled[static_cast<std::size_t>(s)][static_cast<std::size_t>(v)] &&
            st.at(s, v) == lo) {
          settled[static_cast<std::size_t>(s)][static_cast<std::size_t>(v)] = 1;
          rows[static_cast<std::size_t>(s)].emplace_back(v, lo);
          any = true;
        }
      }
    }
    if (!any) break;
    Csr<Weight> frontier = frontier_from_entries(nb, n, rows);
    sparse::SpgemmStats sst;
    Csr<Weight> product =
        sparse::spgemm<TropicalMinMonoid>(frontier, g.adj(), Extend{}, &sst);
    if (cost != nullptr) {
      cost->iterations += 1;
      cost->total_ops += sst.ops;
      cost->frontier_nnz_total += frontier.nnz();
    }
    for (vid_t s = 0; s < nb; ++s) {
      auto cols = product.row_cols(s);
      auto vals = product.row_vals(s);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        if (vals[i] < st.at(s, cols[i])) st.at(s, cols[i]) = vals[i];
      }
    }
  }
  return st.dist;
}

std::vector<Weight> sssp_batch_maximal(const Graph& g,
                                       std::span<const vid_t> sources,
                                       FrontierCost* cost) {
  const vid_t n = g.n();
  const auto nb = static_cast<vid_t>(sources.size());
  State st(nb, n);
  std::vector<std::vector<std::pair<vid_t, Weight>>> rows(
      static_cast<std::size_t>(nb));
  for (vid_t s = 0; s < nb; ++s) {
    MFBC_CHECK(sources[static_cast<std::size_t>(s)] >= 0 &&
                   sources[static_cast<std::size_t>(s)] < n,
               "source out of range");
    st.at(s, sources[static_cast<std::size_t>(s)]) = 0.0;
    rows[static_cast<std::size_t>(s)].emplace_back(
        sources[static_cast<std::size_t>(s)], 0.0);
  }
  Csr<Weight> frontier = frontier_from_entries(nb, n, rows);

  while (frontier.nnz() > 0) {
    sparse::SpgemmStats sst;
    Csr<Weight> product =
        sparse::spgemm<TropicalMinMonoid>(frontier, g.adj(), Extend{}, &sst);
    if (cost != nullptr) {
      cost->iterations += 1;
      cost->total_ops += sst.ops;
      cost->frontier_nnz_total += frontier.nnz();
    }
    for (auto& r : rows) r.clear();
    for (vid_t s = 0; s < nb; ++s) {
      auto cols = product.row_cols(s);
      auto vals = product.row_vals(s);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        if (vals[i] < st.at(s, cols[i])) {
          st.at(s, cols[i]) = vals[i];
          rows[static_cast<std::size_t>(s)].emplace_back(cols[i], vals[i]);
        }
      }
    }
    frontier = frontier_from_entries(nb, n, rows);
  }
  return st.dist;
}

}  // namespace mfbc::apps
