// Algebraic graph algorithms beyond betweenness centrality.
//
// The paper argues its "design methodology is readily extensible to other
// graph problems" (§8) and introduces the formalism with the algebraic BFS
// example (§2.3). This module makes that concrete: BFS, single-source and
// batched shortest paths, connected components, and harmonic closeness
// centrality, all expressed as frontier loops over the same generalized
// SpGEMM kernels the MFBC implementation uses — each with its own monoid.
#pragma once

#include <span>
#include <vector>

#include "algebra/tropical.hpp"
#include "graph/graph.hpp"

namespace mfbc::apps {

using algebra::Weight;
using graph::Graph;
using graph::vid_t;

/// §2.3's algebraic BFS: hop distances from `source` via iterated products
/// over the tropical monoid with unit edge weights (−1 encoded as ∞ in the
/// Weight domain is avoided — unreachable vertices return kInfWeight).
std::vector<Weight> bfs_hops(const Graph& g, vid_t source);

/// Single-source shortest paths via the maximal-frontier Bellman-Ford loop
/// (MFBF without multiplicities): weights from the graph, ∞ if unreachable.
std::vector<Weight> sssp(const Graph& g, vid_t source);

/// Batched shortest paths: row s holds distances from sources[s] (dense
/// nb×n, row-major). This is the T matrix of MFBF restricted to weights.
std::vector<Weight> sssp_batch(const Graph& g, std::span<const vid_t> sources);

/// Connected components by min-label propagation over the (min, keep-label)
/// monoid pair: returns, per vertex, the smallest vertex id in its
/// (weakly-)connected component. Directed graphs are treated as undirected
/// (label propagation follows both edge directions).
std::vector<vid_t> connected_component_labels(const Graph& g);

struct ClosenessOptions {
  vid_t batch_size = 64;
  /// Sources to evaluate; empty = all vertices.
  std::vector<vid_t> sources;
};

/// Harmonic closeness centrality h(s) = Σ_{v≠s} 1/τ(s,v), computed in
/// batches through the MFBF machinery. Harmonic (rather than classic)
/// closeness is used so disconnected graphs are well-defined; unreachable
/// pairs contribute 0.
std::vector<double> harmonic_closeness(const Graph& g,
                                       const ClosenessOptions& opts = {});

}  // namespace mfbc::apps
