#include "apps/triangles.hpp"

#include "algebra/tropical.hpp"
#include "graph/prep.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm.hpp"
#include "support/error.hpp"

namespace mfbc::apps {

namespace {

using algebra::SumMonoid;
using graph::vid_t;
using sparse::Csr;

struct One {
  double operator()(double, double) const { return 1.0; }
};

/// Wedge counts masked to edges: W(u,v) = #paths u–x–v for (u,v) ∈ E.
/// Each triangle {u,v,w} contributes to six (ordered-edge, apex) entries.
Csr<double> masked_wedges(const graph::Graph& g) {
  const graph::Graph sym = graph::symmetrize(g);
  const Csr<double>& a = sym.adj();
  // A·A over the count semiring: every nonzero product is one wedge.
  auto wedges = sparse::spgemm<SumMonoid>(a, a, One{});
  return sparse::ewise_intersect<double>(
      wedges, a, [](double count, double) { return count; });
}

}  // namespace

std::uint64_t count_triangles(const graph::Graph& g) {
  const Csr<double> m = masked_wedges(g);
  double total = 0;
  for (double v : m.val()) total += v;
  // Each triangle is counted once per ordered edge (6 times); the wedge
  // through the apex is unique per (edge, triangle).
  return static_cast<std::uint64_t>(total / 6.0 + 0.5);
}

std::vector<std::uint64_t> triangles_per_vertex(const graph::Graph& g) {
  const Csr<double> m = masked_wedges(g);
  std::vector<double> per(static_cast<std::size_t>(g.n()), 0.0);
  for (vid_t r = 0; r < m.nrows(); ++r) {
    for (double v : m.row_vals(r)) per[static_cast<std::size_t>(r)] += v;
  }
  // Row r sums wedges r–x–v over incident edges (r,v): each triangle at
  // corner r is seen twice (once per incident triangle edge).
  std::vector<std::uint64_t> out(per.size());
  for (std::size_t v = 0; v < per.size(); ++v) {
    out[v] = static_cast<std::uint64_t>(per[v] / 2.0 + 0.5);
  }
  return out;
}

std::vector<double> clustering_coefficients(const graph::Graph& g) {
  const graph::Graph sym = graph::symmetrize(g);
  const auto tri = triangles_per_vertex(g);
  std::vector<double> out(tri.size(), 0.0);
  for (vid_t v = 0; v < sym.n(); ++v) {
    const auto d = static_cast<double>(sym.out_degree(v));
    if (d >= 2) {
      out[static_cast<std::size_t>(v)] =
          static_cast<double>(tri[static_cast<std::size_t>(v)]) /
          (d * (d - 1) / 2.0);
    }
  }
  return out;
}

}  // namespace mfbc::apps
