// Maximum flow — the extension target the paper names explicitly (§8: the
// algebraic formalism "enables intuitive expression of frontiers and edge
// relaxations, making it extensible to other graph problems such as maximum
// flow").
//
// Edmonds–Karp with the augmenting-path search expressed algebraically:
// each BFS level over the residual graph is one generalized product over a
// hop-minimizing monoid whose values carry the predecessor (encoded in the
// frontier value, so the standard f(A(i,k),B(k,j)) bridge suffices).
// Edge weights act as capacities; undirected edges become a pair of
// opposing arcs.
#pragma once

#include "graph/graph.hpp"

namespace mfbc::apps {

struct MaxFlowStats {
  int augmenting_paths = 0;
  int bfs_products = 0;  ///< generalized products across all searches
};

/// Maximum s→t flow; capacities are the graph's edge weights (1 for
/// unweighted graphs). Returns 0 when t is unreachable from s.
double max_flow(const graph::Graph& g, graph::vid_t s, graph::vid_t t,
                MaxFlowStats* stats = nullptr);

}  // namespace mfbc::apps
