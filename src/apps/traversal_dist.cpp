#include "apps/traversal_dist.hpp"

#include "dist/ddense.hpp"
#include "dist/spgemm_dist.hpp"
#include "support/error.hpp"

namespace mfbc::apps {

namespace {

using algebra::kInfWeight;
using algebra::TropicalMinMonoid;
using dist::DistMatrix;
using dist::Layout;
using dist::Range;
using sparse::Coo;
using sparse::Csr;

struct Extend {
  Weight operator()(Weight a, Weight b) const { return a + b; }
};

std::pair<int, int> near_square(int p) {
  int pr = 1;
  for (int d = 1; d * d <= p; ++d) {
    if (p % d == 0) pr = d;
  }
  return {pr, p / pr};
}

}  // namespace

std::vector<Weight> sssp_batch_dist(sim::Sim& sim, const Graph& g,
                                    std::span<const vid_t> sources) {
  const vid_t n = g.n();
  const auto nb = static_cast<vid_t>(sources.size());
  const int p = sim.nranks();
  auto [pr, pc] = near_square(p);
  const Layout sl{0, pr, pc, Range{0, nb}, Range{0, n}, false};
  const Layout base{0, pr, pc, Range{0, n}, Range{0, n}, false};

  auto adj = DistMatrix<Weight>::scatter<TropicalMinMonoid>(sim, g.adj(), base);
  dist::HomeCache<Weight> cache;

  // Accumulated distances live densely per rank block (the O(n·n_b/p)
  // state footprint), in the same layout the products are delivered on.
  dist::DistDenseMatrix<Weight> state(nb, n, sl, kInfWeight);
  auto at = [&](vid_t s, vid_t v) -> Weight& { return state.at(s, v); };

  // Initial frontier: sources at distance 0, placed on the state grid.
  DistMatrix<Weight> frontier(nb, n, sl);
  {
    auto bins = dist::empty_bins<Weight>(sl, n);
    for (vid_t s = 0; s < nb; ++s) {
      const vid_t src = sources[static_cast<std::size_t>(s)];
      MFBC_CHECK(src >= 0 && src < n, "source out of range");
      at(s, src) = 0.0;
      auto [bi, bj] = sl.owner(s, src);
      bins[static_cast<std::size_t>(bi * pc + bj)].push(
          s - sl.block_rows(bi, bj).lo, src, 0.0);
    }
    frontier = dist::from_blocks<TropicalMinMonoid>(nb, n, sl, std::move(bins));
  }

  std::vector<int> all_ranks(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) all_ranks[static_cast<std::size_t>(r)] = r;

  while (frontier.nnz() > 0) {
    auto stats = dist::MultiplyStats::estimated(
        nb, n, n, static_cast<double>(frontier.nnz()),
        static_cast<double>(adj.nnz()), 2, 2, 2);
    const dist::Plan plan = dist::autotune(p, stats, sim.model());
    DistMatrix<Weight> product = dist::spgemm<TropicalMinMonoid>(
        sim, plan, frontier, adj, Extend{}, sl, nullptr, &cache);
    DistMatrix<Weight> next(nb, n, sl);
    for (int i = 0; i < pr; ++i) {
      for (int j = 0; j < pc; ++j) {
        const Range rows = sl.block_rows(i, j);
        const auto& blk = product.block(i, j);
        Coo<Weight> bin(rows.size(), n);
        for (vid_t lr = 0; lr < blk.nrows(); ++lr) {
          auto cols = blk.row_cols(lr);
          auto vals = blk.row_vals(lr);
          for (std::size_t x = 0; x < cols.size(); ++x) {
            if (vals[x] < at(rows.lo + lr, cols[x])) {
              at(rows.lo + lr, cols[x]) = vals[x];
              bin.push(lr, cols[x], vals[x]);
            }
          }
        }
        sim.charge_compute(sl.rank_at(i, j),
                           static_cast<double>(blk.nnz()));
        next.block(i, j) =
            Csr<Weight>::from_coo<TropicalMinMonoid>(std::move(bin));
      }
    }
    frontier = std::move(next);
    sim.charge_allreduce(all_ranks, 1.0);
  }
  // Final answer gathered to the caller.
  return state.gather(sim);
}

std::vector<double> harmonic_closeness_dist(sim::Sim& sim, const Graph& g,
                                            const ClosenessOptions& opts) {
  MFBC_CHECK(opts.batch_size >= 1, "batch size must be positive");
  const vid_t n = g.n();
  std::vector<vid_t> sources = opts.sources;
  if (sources.empty()) {
    sources.resize(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  }
  std::vector<int> all_ranks(static_cast<std::size_t>(sim.nranks()));
  for (int r = 0; r < sim.nranks(); ++r) {
    all_ranks[static_cast<std::size_t>(r)] = r;
  }
  std::vector<double> closeness(sources.size(), 0.0);
  for (std::size_t lo = 0; lo < sources.size();
       lo += static_cast<std::size_t>(opts.batch_size)) {
    const std::size_t hi = std::min(
        sources.size(), lo + static_cast<std::size_t>(opts.batch_size));
    std::span<const vid_t> batch(sources.data() + lo, hi - lo);
    const auto dist = sssp_batch_dist(sim, g, batch);
    for (std::size_t s = 0; s < batch.size(); ++s) {
      double h = 0;
      for (vid_t v = 0; v < n; ++v) {
        const Weight d =
            dist[s * static_cast<std::size_t>(n) + static_cast<std::size_t>(v)];
        if (v != batch[s] && d > 0 && d < kInfWeight) h += 1.0 / d;
      }
      closeness[lo + s] = h;
    }
  }
  // Per-source scores are summed with one reduction over all ranks.
  sim.charge_reduce(all_ranks, static_cast<double>(closeness.size()));
  return closeness;
}

}  // namespace mfbc::apps
