#include "apps/traversal.hpp"

#include <algorithm>

#include "sparse/ops.hpp"
#include "sparse/spgemm.hpp"
#include "support/error.hpp"

namespace mfbc::apps {

namespace {

using algebra::kInfWeight;
using algebra::TropicalMinMonoid;
using sparse::Csr;
using sparse::nnz_t;

/// Tropical "extend": append an edge to a path (the + of (min,+)).
struct Extend {
  Weight operator()(Weight a, Weight b) const { return a + b; }
};

/// Shared maximal-frontier relaxation loop over the tropical monoid: each
/// iteration multiplies the sparse frontier by the adjacency (or unit
/// adjacency) matrix and keeps strictly improving entries.
std::vector<Weight> relax_batch(const Graph& g,
                                std::span<const vid_t> sources,
                                bool unit_weights) {
  const vid_t n = g.n();
  const auto nb = static_cast<vid_t>(sources.size());
  std::vector<Weight> dist(
      static_cast<std::size_t>(nb) * static_cast<std::size_t>(n), kInfWeight);
  auto at = [&](vid_t s, vid_t v) -> Weight& {
    return dist[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
  };

  const Csr<Weight>* adj = &g.adj();
  Csr<Weight> unit;
  if (unit_weights && g.weighted()) {
    unit = sparse::map_values<Weight>(
        g.adj(), [](vid_t, vid_t, Weight) { return 1.0; });
    adj = &unit;
  }

  // Initial frontier: the sources at distance 0.
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(nb) + 1, 0);
  std::vector<vid_t> col(static_cast<std::size_t>(nb));
  std::vector<Weight> val(static_cast<std::size_t>(nb), 0.0);
  for (vid_t s = 0; s < nb; ++s) {
    MFBC_CHECK(sources[static_cast<std::size_t>(s)] >= 0 &&
                   sources[static_cast<std::size_t>(s)] < n,
               "source out of range");
    rowptr[static_cast<std::size_t>(s) + 1] = s + 1;
    col[static_cast<std::size_t>(s)] = sources[static_cast<std::size_t>(s)];
    at(s, sources[static_cast<std::size_t>(s)]) = 0.0;
  }
  Csr<Weight> frontier(nb, n, std::move(rowptr), std::move(col),
                       std::move(val));

  while (frontier.nnz() > 0) {
    Csr<Weight> product =
        sparse::spgemm<TropicalMinMonoid>(frontier, *adj, Extend{});
    std::vector<nnz_t> nrowptr(static_cast<std::size_t>(nb) + 1, 0);
    std::vector<vid_t> ncol;
    std::vector<Weight> nval;
    for (vid_t s = 0; s < nb; ++s) {
      auto cols = product.row_cols(s);
      auto vals = product.row_vals(s);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        if (vals[i] < at(s, cols[i])) {
          at(s, cols[i]) = vals[i];
          ncol.push_back(cols[i]);
          nval.push_back(vals[i]);
        }
      }
      nrowptr[static_cast<std::size_t>(s) + 1] =
          static_cast<nnz_t>(ncol.size());
    }
    frontier = Csr<Weight>(nb, n, std::move(nrowptr), std::move(ncol),
                           std::move(nval));
  }
  return dist;
}

}  // namespace

std::vector<Weight> bfs_hops(const Graph& g, vid_t source) {
  const vid_t src[] = {source};
  return relax_batch(g, src, /*unit_weights=*/true);
}

std::vector<Weight> sssp(const Graph& g, vid_t source) {
  const vid_t src[] = {source};
  return relax_batch(g, src, /*unit_weights=*/false);
}

std::vector<Weight> sssp_batch(const Graph& g,
                               std::span<const vid_t> sources) {
  return relax_batch(g, sources, /*unit_weights=*/false);
}

std::vector<vid_t> connected_component_labels(const Graph& g) {
  const vid_t n = g.n();
  // Min-label monoid over vertex ids; identity = n (no label).
  struct MinLabel {
    // value_type must be set per instantiation; vid_t labels with sentinel.
    using value_type = vid_t;
    static value_type identity() {
      return std::numeric_limits<vid_t>::max();
    }
    static value_type combine(value_type a, value_type b) {
      return std::min(a, b);
    }
    static bool is_identity(value_type a) {
      return a == std::numeric_limits<vid_t>::max();
    }
  };
  struct KeepLabel {
    vid_t operator()(vid_t label, Weight) const { return label; }
  };

  // Symmetric adjacency for weak connectivity.
  Csr<Weight> sym = sparse::ewise_union<TropicalMinMonoid>(
      g.adj(), sparse::transpose(g.adj()));

  std::vector<vid_t> label(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) label[static_cast<std::size_t>(v)] = v;

  // Frontier: 1×n row of labels, initially every vertex proposing its own.
  std::vector<nnz_t> rowptr{0, static_cast<nnz_t>(n)};
  std::vector<vid_t> col(static_cast<std::size_t>(n));
  std::vector<vid_t> val(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    col[static_cast<std::size_t>(v)] = v;
    val[static_cast<std::size_t>(v)] = v;
  }
  Csr<vid_t> frontier(1, n, std::move(rowptr), std::move(col),
                      std::move(val));

  while (frontier.nnz() > 0) {
    Csr<vid_t> product = sparse::spgemm<MinLabel>(frontier, sym, KeepLabel{});
    std::vector<vid_t> ncol;
    std::vector<vid_t> nval;
    auto cols = product.row_cols(0);
    auto vals = product.row_vals(0);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      auto& cur = label[static_cast<std::size_t>(cols[i])];
      if (vals[i] < cur) {
        cur = vals[i];
        ncol.push_back(cols[i]);
        nval.push_back(vals[i]);
      }
    }
    std::vector<nnz_t> nrowptr{0, static_cast<nnz_t>(ncol.size())};
    frontier =
        Csr<vid_t>(1, n, std::move(nrowptr), std::move(ncol), std::move(nval));
  }
  return label;
}

std::vector<double> harmonic_closeness(const Graph& g,
                                       const ClosenessOptions& opts) {
  MFBC_CHECK(opts.batch_size >= 1, "batch size must be positive");
  const vid_t n = g.n();
  std::vector<vid_t> sources = opts.sources;
  if (sources.empty()) {
    sources.resize(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  }
  std::vector<double> closeness(sources.size(), 0.0);
  for (std::size_t lo = 0; lo < sources.size();
       lo += static_cast<std::size_t>(opts.batch_size)) {
    const std::size_t hi = std::min(
        sources.size(), lo + static_cast<std::size_t>(opts.batch_size));
    std::span<const vid_t> batch(sources.data() + lo, hi - lo);
    const auto dist = sssp_batch(g, batch);
    for (std::size_t s = 0; s < batch.size(); ++s) {
      double h = 0;
      for (vid_t v = 0; v < n; ++v) {
        const Weight d =
            dist[s * static_cast<std::size_t>(n) + static_cast<std::size_t>(v)];
        if (v != batch[s] && d > 0 && d < kInfWeight) h += 1.0 / d;
      }
      closeness[lo + s] = h;
    }
  }
  return closeness;
}

}  // namespace mfbc::apps
