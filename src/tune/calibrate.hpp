// Calibrated cost models, profile persistence, and the adaptive plan tuner.
//
// Three pieces (docs/autotuning.md):
//
//  * Calibration — tune::calibrate() runs a microbenchmark grid of small
//    distributed multiplies over the §5.2 plan space, compares each plan's
//    predicted ModelCost components against the charged cost off the
//    ledger, and least-squares-fits per-component correction scales
//    (effective α, β, flop rate). The scales adjust the machine model used
//    for *plan selection only* — charging is untouched, so calibration can
//    never change results or ledger totals, only which plan runs.
//
//  * Profile — a versioned JSON file carrying the calibration, the machine
//    signature it was fitted for, and the persistent plan cache
//    (tune/plan_cache.hpp). Loading validates schema, version, coefficient
//    sanity (finite, positive), and the machine signature; try_load_profile
//    degrades to the uncalibrated model with a warning instead of failing
//    the run.
//
//  * Tuner — the online re-planner consulted by core::DistMfbc each
//    iteration: corrects the §5.2 uniform ops/nnz(C) estimates with the
//    stream's last measured ratios (from the Observer), evaluates the
//    calibrated model, consults the plan cache, and applies hysteresis —
//    switching plans only when the modelled win exceeds the modelled cost
//    of redistributing the stationary operand to the new plan's homes
//    (the HomeCache amortization of dist/spgemm_dist.hpp makes returning
//    to an already-seen plan free).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dist/autotune.hpp"
#include "sim/machine.hpp"
#include "telemetry/json.hpp"
#include "tune/observer.hpp"
#include "tune/plan_cache.hpp"

namespace mfbc::tune {

inline constexpr const char* kProfileSchema = "mfbc.tune.v1";
inline constexpr int kProfileVersion = 1;

/// Least-squares-fitted correction scales for the §5.2 model.
struct Calibration {
  double alpha_scale = 1.0;    ///< effective latency / modelled latency
  double beta_scale = 1.0;     ///< effective inverse bandwidth correction
  double compute_scale = 1.0;  ///< effective seconds-per-op correction
  int samples = 0;
  double err_before = 0;  ///< mean |pred−meas|/meas before the fit
  double err_after = 0;   ///< same, with the scales applied

  bool calibrated() const { return samples > 0; }

  /// The machine model the *planner* should evaluate (α, β, seconds_per_op
  /// scaled; memory untouched). Never used for charging.
  sim::MachineModel apply(const sim::MachineModel& mm) const;

  /// Throws mfbc::Error on NaN/Inf or non-positive scales.
  void validate() const;
};

/// The persistent tuning profile (calibration + plan cache + signature).
struct Profile {
  sim::MachineModel machine;  ///< signature: model the calibration ran on
  Calibration calibration;
  telemetry::Json plans = telemetry::Json::array();  ///< serialized cache
  /// Cross-run staleness tracking: the mean absolute relative prediction
  /// error the tuner's Observer measured over the profile's *last* run
  /// (snapshot_profile folds it in before save). A freshly calibrated
  /// profile predicted within err_after of the measured cost; when later
  /// runs drift far past that, the calibration no longer describes the
  /// workload and the Tuner warns at load time (tune.profile.stale).
  /// observed_samples == 0 means nothing recorded yet (old profiles parse
  /// fine — the block is optional in the JSON).
  double observed_error = 0;
  std::int64_t observed_samples = 0;

  telemetry::Json to_json() const;
  /// Parse + validate (schema, version, coefficients); throws mfbc::Error.
  static Profile from_json(const telemetry::Json& j);

  void save(const std::string& path) const;
  /// Read + parse + validate; throws mfbc::Error (truncated file, schema or
  /// version mismatch, bad coefficients all produce a descriptive message).
  static Profile load(const std::string& path);

  /// Throws mfbc::Error when `mm` differs from the profile's machine
  /// signature (a profile calibrated for one machine must not silently
  /// steer plan selection on another).
  void check_machine(const sim::MachineModel& mm) const;
};

/// Load and validate `path` against `mm`. On any failure: print a warning,
/// optionally report the message through `error`, and return nullopt so the
/// caller falls back to the uncalibrated model.
std::optional<Profile> try_load_profile(const std::string& path,
                                        const sim::MachineModel& mm,
                                        std::string* error = nullptr);

struct CalibrateOptions {
  int ranks = 16;
  sparse::vid_t n = 512;   ///< calibration graph vertices
  sparse::vid_t nb = 64;   ///< frontier rows per sample multiply
  std::vector<double> degrees = {4.0, 8.0};  ///< graph average degrees
  std::uint64_t seed = 1;
  sim::MachineModel machine = sim::MachineModel::blue_waters();
  /// Also wall-clock a local multiply and fold the measured flop rate into
  /// compute_scale. Off by default: it makes the profile machine-dependent
  /// and non-deterministic, which the tests must not be.
  bool measure_flop_rate = false;
};

/// Run the calibration microbenchmark pass and return a fitted profile
/// (plan cache empty). Deterministic given the options, unless
/// measure_flop_rate is set.
Profile calibrate(const CalibrateOptions& opts = {});

struct TunerOptions {
  bool hysteresis = true;
  /// Switch only when modelled_win > switch_margin · modelled_switch_cost.
  double switch_margin = 1.0;
  bool use_cache = true;
  /// Correct the §5.2 ops/nnz(C) estimates with the stream's last measured
  /// ratios before planning.
  bool learn_ratios = true;
  /// Key cache entries by pool thread count too. Off by default: plans must
  /// not depend on pool size or results would stop being bit-identical
  /// across thread counts (docs/autotuning.md).
  bool thread_scoped_cache = false;
  /// Staleness threshold for a loaded calibrated profile: flag it stale
  /// when the error observed by the profile's last run exceeds
  /// stale_error_factor * max(err_after, stale_error_floor). The floor
  /// keeps a near-perfect calibration (err_after ~ 0) from tripping on
  /// ordinary noise.
  double stale_error_factor = 2.0;
  double stale_error_floor = 0.05;
};

/// One plan request from the algorithm layer.
struct PlanRequest {
  std::string stream;  ///< re-planning context ("forward", "backward", ...)
  std::string monoid;  ///< operation tag for the cache key
  int ranks = 0;
  dist::MultiplyStats stats;  ///< with the §5.2 uniform estimates filled in
  sim::MachineModel machine;  ///< the *charging* model (uncalibrated)
  dist::TuneOptions opts;
  /// Topology epoch (grid shrinks survived, sim/faults.hpp): keys the plan
  /// cache so a shrink retires every plan chosen for the old placement.
  int topology = 0;
  /// Structural signature of the graph version being computed on
  /// (graph/mutate.hpp), 0 for unversioned batch runs. Keys the plan cache
  /// per version: the serving layer's mutated adjacencies must not reuse
  /// plans tuned for a structure that no longer exists.
  std::uint64_t graph_sig = 0;
};

class Tuner {
 public:
  explicit Tuner(Profile profile = {}, TunerOptions opts = {});

  /// Choose the plan for the next multiply. Deterministic given the request
  /// sequence and the loaded profile.
  dist::Plan plan(const PlanRequest& req);

  Observer& observer() { return observer_; }
  PlanCache& cache() { return cache_; }
  const Profile& profile() const { return profile_; }
  const TunerOptions& options() const { return opts_; }

  /// Profile with the current cache contents folded in (what save() writes).
  Profile snapshot_profile() const;
  void save(const std::string& path) const;

  /// True when the loaded profile's recorded cross-run prediction error
  /// drifted past the TunerOptions staleness threshold — the calibration no
  /// longer describes the workload; re-run --calibrate. Flagged (once, with
  /// a stderr warning and a tune.profile.stale counter bump) at
  /// construction; the tuner still runs, it just plans on scales that have
  /// stopped earning their trust.
  bool profile_stale() const { return stale_; }

  std::uint64_t replans() const { return replans_; }
  std::uint64_t plan_switches() const { return switches_; }
  std::uint64_t hysteresis_holds() const { return holds_; }
  /// Candidates the per-rank memory limit rejected across all plan searches
  /// (memory-pressure re-planning visibility; also in json()).
  std::uint64_t pruned_memory() const { return pruned_memory_; }
  /// Observer's overall mean absolute relative prediction error.
  double prediction_error() const { return observer_.overall().mean_abs_rel(); }

  /// The --json artifact's `tune` block: calibration scales, prediction
  /// error (overall + per variant), cache hit rate, plan-switch counters.
  telemetry::Json json() const;

  /// Forget per-stream current plans and seen-plan sets (cache and observer
  /// stay). Used between independent runs sharing one tuner.
  void reset_stream_state();

  /// Seed a stream's hysteresis state with a plan that is already running —
  /// its operand homes are mapped, so holding it (or returning to it) is
  /// free. No-op when the stream already has a current plan. Engines whose
  /// untuned behavior is a fixed plan (the CombBLAS baseline) seed their
  /// streams with it, so the tuner switches away only when the modelled win
  /// clears the modelled re-homing cost of the candidate.
  void seed_stream(const std::string& stream, const dist::Plan& plan);

 private:
  PlanKey make_key(const PlanRequest& req,
                   const dist::MultiplyStats& stats) const;

  Profile profile_;
  TunerOptions opts_;
  Observer observer_;
  PlanCache cache_;
  std::map<std::string, dist::Plan> current_;       ///< per stream
  std::map<std::string, std::set<std::string>> seen_;  ///< plans with homes mapped
  std::uint64_t replans_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t holds_ = 0;
  std::uint64_t pruned_memory_ = 0;
  bool stale_ = false;
};

}  // namespace mfbc::tune
