// Persistent cache of winning SpGEMM plans.
//
// Repeated workloads (every MFBC batch multiplies a frontier of a similar
// size against the same adjacency) should not re-enumerate the §5.2 plan
// space on every iteration. The cache keys a chosen plan by the operation
// shape — monoid tag, matrix dims, log2 nnz bands of both operands, rank
// count, and (optionally) pool thread count — and round-trips through the
// versioned JSON profile file (tune/calibrate.hpp), so the plans a run
// learned survive into the next run.
//
// The nnz band quantizes the operand sizes: two frontiers within the same
// power-of-two band share an entry, which is what makes the cache hit at all
// as the frontier breathes between iterations.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>

#include "dist/cost_model.hpp"
#include "telemetry/json.hpp"

namespace mfbc::tune {

struct PlanKey {
  std::string monoid;  ///< operation tag ("multpath", "centpath", ...)
  sparse::vid_t m = 0, k = 0, n = 0;
  int band_a = 0;  ///< floor(log2(nnz_a)), -1 for an empty operand
  int band_b = 0;
  int ranks = 0;
  /// Pool thread count, or 0 for thread-count-invariant entries (the
  /// default: plan choices must not depend on pool size, or results would
  /// stop being bit-identical across thread counts — docs/autotuning.md).
  int threads = 0;
  /// Schedule axis of the request: 1 when the tuner was allowed to pick
  /// async-pipelined plans, 0 for sync-only. Keying on the request (not the
  /// chosen plan) keeps a sync-only run from adopting an async plan cached
  /// by an async-enabled run, and vice versa: the two searches ran over
  /// different candidate spaces, so their winners are not interchangeable.
  int schedule = 0;
  /// Distribution axis of the request, same keying rule as `schedule`: bit 0
  /// set when the request's data sits on a balanced partition, bit 1 set
  /// when the advisory other-distribution twins were enumerated. 0 (a plain
  /// block request) keeps pre-partition profile entries addressable.
  int partition = 0;
  /// Topology epoch: the number of grid shrinks the machine has survived
  /// (sim/faults.hpp). A shrink consolidates the whole virtual fleet onto
  /// fewer physical hosts, so every plan chosen for the old placement is
  /// stale — bumping the epoch retires those cache entries without touching
  /// them. 0 (the healthy machine) keeps pre-elastic profile entries
  /// addressable.
  int topology = 0;
  /// Structural signature of the graph version the plan was chosen for
  /// (graph/mutate.hpp): the serving layer keys per-version plans the same
  /// way topology keys per-placement plans, so a plan tuned against one
  /// published version is never silently replayed against a mutated
  /// adjacency. 0 (an unversioned run, the batch default) keeps
  /// pre-versioning profile entries addressable. Serialized as a hex
  /// string in the profile JSON — the number form would round through a
  /// double and lose bits.
  std::uint64_t graph = 0;

  /// floor(log2(nnz)) band, -1 for nnz <= 0.
  static int nnz_band(double nnz);

  std::string to_string() const;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    auto tie = [](const PlanKey& x) {
      return std::tie(x.monoid, x.m, x.k, x.n, x.band_a, x.band_b, x.ranks,
                      x.threads, x.schedule, x.partition, x.topology,
                      x.graph);
    };
    return tie(a) < tie(b);
  }
};

/// Serialize a plan as {"p1","p2","p3","v1","v2"} plus, for async plans
/// only, {"sched":"async","tile":N}; from_json throws mfbc::Error on
/// malformed shapes or unknown variant letters, and tolerates profiles
/// written before the schedule dimension existed (missing fields → sync).
telemetry::Json plan_to_json(const dist::Plan& plan);
dist::Plan plan_from_json(const telemetry::Json& j);

class PlanCache {
 public:
  /// Look up a plan; counts a hit or a miss.
  std::optional<dist::Plan> find(const PlanKey& key);

  /// Insert or overwrite the plan for `key`.
  void insert(const PlanKey& key, const dist::Plan& plan);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// hits / (hits + misses), 0 when never queried.
  double hit_rate() const;
  void clear();
  /// Zero the hit/miss counters (entries stay).
  void reset_counters();

  /// Entries as the profile file's "plans" array.
  telemetry::Json to_json() const;
  /// Merge entries from a "plans" array; throws mfbc::Error on malformed
  /// entries (missing fields, bad plan shapes).
  void load_json(const telemetry::Json& plans);

 private:
  mutable std::mutex mu_;
  std::map<PlanKey, dist::Plan> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mfbc::tune
