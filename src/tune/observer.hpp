// Runtime observation of distributed SpGEMM executions.
//
// The §5.2 cost model predicts what a multiply *should* cost; the simulated
// machine's ledger records what it *did* cost. An Observer sits between the
// two: every dist::spgemm executed while one is installed records the plan,
// the model's prediction (evaluated on the actual operand nnz with the §5.2
// uniform estimates for ops/nnz(C)), and the measured critical-path delta.
// The tuner (tune/calibrate.hpp) uses the per-stream history to re-plan the
// next multiply from measured quantities instead of a-priori guesses, and
// the per-variant error statistics feed the `tune` block of the --json run
// artifacts.
//
// Installation is ambient (set_active_observer / ScopedObserver) so the
// recording hook in dist::spgemm needs no signature change; the library
// funnels all multiplies through one submitting thread, and record() takes a
// mutex besides, so concurrent submitters are safe too.
#pragma once

#include <cmath>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dist/cost_model.hpp"
#include "sim/ledger.hpp"

namespace mfbc::tune {

/// One observed distributed multiply.
struct Observation {
  dist::Plan plan;
  std::string stream;        ///< caller tag ("forward", "backward", ...)
  dist::ModelCost predicted; ///< §5.2 model on the actual operand nnz
  sim::Cost measured;        ///< ledger critical-path delta over the multiply
  double nnz_a = 0, nnz_b = 0, nnz_c = 0;
  double ops = 0;            ///< measured nonzero products (sum over ranks)
  double est_ops = 0;        ///< the uniform estimates the prediction used,
  double est_nnz_c = 0;      ///< kept so the tuner can form correction ratios

  /// |predicted − measured| / measured on total modelled seconds.
  double abs_rel_error() const {
    const double meas = measured.total_seconds();
    if (!(meas > 0)) return 0;
    return std::abs(predicted.total() - meas) / meas;
  }
};

/// Prediction-error accumulator (per plan variant and overall).
struct ErrorStats {
  std::int64_t count = 0;
  double sum_abs_rel = 0;
  double worst = 0;

  double mean_abs_rel() const {
    return count > 0 ? sum_abs_rel / static_cast<double>(count) : 0.0;
  }
  void add(double abs_rel) {
    ++count;
    sum_abs_rel += abs_rel;
    if (abs_rel > worst) worst = abs_rel;
  }
};

class Observer {
 public:
  /// Tag subsequent observations with a stream name (the tuner sets this to
  /// the re-planning context before each multiply).
  void set_stream(std::string stream) {
    std::lock_guard<std::mutex> lock(mu_);
    stream_ = std::move(stream);
  }
  std::string stream() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stream_;
  }

  void record(Observation o) {
    std::lock_guard<std::mutex> lock(mu_);
    if (o.stream.empty()) o.stream = stream_;
    const double err = o.abs_rel_error();
    overall_.add(err);
    by_variant_[o.plan.to_string()].add(err);
    last_by_stream_[o.stream] = o;
    observations_.push_back(std::move(o));
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return observations_.size();
  }

  std::vector<Observation> all() const {
    std::lock_guard<std::mutex> lock(mu_);
    return observations_;
  }

  /// Most recent observation tagged with `stream`, if any.
  std::optional<Observation> last(const std::string& stream) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = last_by_stream_.find(stream);
    if (it == last_by_stream_.end()) return std::nullopt;
    return it->second;
  }

  ErrorStats overall() const {
    std::lock_guard<std::mutex> lock(mu_);
    return overall_;
  }

  std::map<std::string, ErrorStats> per_variant() const {
    std::lock_guard<std::mutex> lock(mu_);
    return by_variant_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    observations_.clear();
    last_by_stream_.clear();
    by_variant_.clear();
    overall_ = ErrorStats{};
  }

 private:
  mutable std::mutex mu_;
  std::string stream_;
  std::vector<Observation> observations_;
  std::map<std::string, Observation> last_by_stream_;
  std::map<std::string, ErrorStats> by_variant_;
  ErrorStats overall_;
};

namespace detail {
inline Observer*& active_observer_slot() {
  static Observer* active = nullptr;
  return active;
}
}  // namespace detail

/// The ambiently installed observer, or nullptr (recording disabled).
inline Observer* active_observer() { return detail::active_observer_slot(); }

/// Install `obs` (nullptr disables recording); returns the previous one.
inline Observer* set_active_observer(Observer* obs) {
  Observer* prev = detail::active_observer_slot();
  detail::active_observer_slot() = obs;
  return prev;
}

/// RAII installer restoring the previous observer on scope exit.
class ScopedObserver {
 public:
  explicit ScopedObserver(Observer* obs) : prev_(set_active_observer(obs)) {}
  ~ScopedObserver() { set_active_observer(prev_); }
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  Observer* prev_;
};

}  // namespace mfbc::tune
