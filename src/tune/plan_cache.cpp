#include "tune/plan_cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace mfbc::tune {

namespace {

const char* v1_name(dist::Variant1D v) {
  switch (v) {
    case dist::Variant1D::kA: return "A";
    case dist::Variant1D::kB: return "B";
    case dist::Variant1D::kC: return "C";
  }
  return "?";
}

const char* v2_name(dist::Variant2D v) {
  switch (v) {
    case dist::Variant2D::kAB: return "AB";
    case dist::Variant2D::kAC: return "AC";
    case dist::Variant2D::kBC: return "BC";
  }
  return "?";
}

dist::Variant1D v1_of(const std::string& s) {
  if (s == "A") return dist::Variant1D::kA;
  if (s == "B") return dist::Variant1D::kB;
  if (s == "C") return dist::Variant1D::kC;
  throw Error("tune profile: unknown 1D variant letter: " + s);
}

dist::Variant2D v2_of(const std::string& s) {
  if (s == "AB") return dist::Variant2D::kAB;
  if (s == "AC") return dist::Variant2D::kAC;
  if (s == "BC") return dist::Variant2D::kBC;
  throw Error("tune profile: unknown 2D variant pair: " + s);
}

double num_field(const telemetry::Json& j, const char* key) {
  const telemetry::Json* f = j.find(key);
  MFBC_CHECK(f != nullptr && f->is_number(),
             std::string("tune profile: missing or non-numeric field: ") + key);
  return f->as_double();
}

std::string str_field(const telemetry::Json& j, const char* key) {
  const telemetry::Json* f = j.find(key);
  MFBC_CHECK(f != nullptr && f->is_string(),
             std::string("tune profile: missing or non-string field: ") + key);
  return f->as_string();
}

}  // namespace

int PlanKey::nnz_band(double nnz) {
  if (!(nnz > 0)) return -1;
  return static_cast<int>(std::floor(std::log2(nnz)));
}

std::string PlanKey::to_string() const {
  std::ostringstream os;
  os << monoid << ":" << m << "x" << k << "x" << n << ":a" << band_a << ":b"
     << band_b << ":p" << ranks << ":t" << threads;
  if (schedule != 0) os << ":s" << schedule;
  if (partition != 0) os << ":d" << partition;
  if (topology != 0) os << ":g" << topology;
  if (graph != 0) os << ":v" << std::hex << graph << std::dec;
  return os.str();
}

telemetry::Json plan_to_json(const dist::Plan& plan) {
  telemetry::Json j = telemetry::Json::object();
  j["p1"] = telemetry::Json(plan.p1);
  j["p2"] = telemetry::Json(plan.p2);
  j["p3"] = telemetry::Json(plan.p3);
  j["v1"] = telemetry::Json(v1_name(plan.v1));
  j["v2"] = telemetry::Json(v2_name(plan.v2));
  if (plan.is_async()) {
    // Sync plans serialize exactly as they always did, so profiles written
    // by this version stay loadable by pre-schedule readers unless a run
    // actually cached an async plan.
    j["sched"] = telemetry::Json("async");
    j["tile"] = telemetry::Json(std::max(plan.tile, 1));
  }
  // Same compatibility rule for the distribution dimension.
  if (plan.is_balanced()) j["dist"] = telemetry::Json("balanced");
  return j;
}

dist::Plan plan_from_json(const telemetry::Json& j) {
  MFBC_CHECK(j.is_object(), "tune profile: plan must be an object");
  dist::Plan plan;
  plan.p1 = static_cast<int>(num_field(j, "p1"));
  plan.p2 = static_cast<int>(num_field(j, "p2"));
  plan.p3 = static_cast<int>(num_field(j, "p3"));
  MFBC_CHECK(plan.p1 >= 1 && plan.p2 >= 1 && plan.p3 >= 1,
             "tune profile: plan factors must be positive");
  plan.v1 = v1_of(str_field(j, "v1"));
  plan.v2 = v2_of(str_field(j, "v2"));
  if (const telemetry::Json* s = j.find("sched"); s != nullptr) {
    MFBC_CHECK(s->is_string() && (s->as_string() == "sync" ||
                                  s->as_string() == "async"),
               "tune profile: plan \"sched\" must be \"sync\" or \"async\"");
    if (s->as_string() == "async") {
      MFBC_CHECK(plan.p2 * plan.p3 > 1,
                 "tune profile: async schedule requires a 2D level");
      plan.sched = dist::Sched::kAsync;
      plan.tile = static_cast<int>(num_field(j, "tile"));
      MFBC_CHECK(plan.tile >= 1, "tune profile: async tile must be >= 1");
    }
  }
  if (const telemetry::Json* d = j.find("dist"); d != nullptr) {
    MFBC_CHECK(d->is_string() && (d->as_string() == "block" ||
                                  d->as_string() == "balanced"),
               "tune profile: plan \"dist\" must be \"block\" or \"balanced\"");
    if (d->as_string() == "balanced") plan.dist = dist::Dist::kBalanced;
  }
  return plan;
}

std::optional<dist::Plan> PlanCache::find(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void PlanCache::insert(const PlanKey& key, const dist::Plan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = plan;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

double PlanCache::hit_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                   : 0.0;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

void PlanCache::reset_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  misses_ = 0;
}

telemetry::Json PlanCache::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  telemetry::Json arr = telemetry::Json::array();
  for (const auto& [key, plan] : entries_) {
    telemetry::Json e = telemetry::Json::object();
    e["monoid"] = telemetry::Json(key.monoid);
    e["m"] = telemetry::Json(static_cast<std::int64_t>(key.m));
    e["k"] = telemetry::Json(static_cast<std::int64_t>(key.k));
    e["n"] = telemetry::Json(static_cast<std::int64_t>(key.n));
    e["band_a"] = telemetry::Json(key.band_a);
    e["band_b"] = telemetry::Json(key.band_b);
    e["ranks"] = telemetry::Json(key.ranks);
    e["threads"] = telemetry::Json(key.threads);
    if (key.schedule != 0) e["schedule"] = telemetry::Json(key.schedule);
    if (key.partition != 0) e["partition"] = telemetry::Json(key.partition);
    if (key.topology != 0) e["topology"] = telemetry::Json(key.topology);
    if (key.graph != 0) {
      // Hex string, not a number: the JSON layer stores numbers as doubles
      // and a 64-bit signature would silently lose its low bits.
      std::ostringstream hex;
      hex << std::hex << key.graph;
      e["graph"] = telemetry::Json(hex.str());
    }
    e["plan"] = plan_to_json(plan);
    arr.push(std::move(e));
  }
  return arr;
}

void PlanCache::load_json(const telemetry::Json& plans) {
  MFBC_CHECK(plans.is_array(), "tune profile: \"plans\" must be an array");
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const telemetry::Json& e = plans.at(i);
    MFBC_CHECK(e.is_object(), "tune profile: plan entry must be an object");
    PlanKey key;
    key.monoid = str_field(e, "monoid");
    key.m = static_cast<sparse::vid_t>(num_field(e, "m"));
    key.k = static_cast<sparse::vid_t>(num_field(e, "k"));
    key.n = static_cast<sparse::vid_t>(num_field(e, "n"));
    key.band_a = static_cast<int>(num_field(e, "band_a"));
    key.band_b = static_cast<int>(num_field(e, "band_b"));
    key.ranks = static_cast<int>(num_field(e, "ranks"));
    key.threads = static_cast<int>(num_field(e, "threads"));
    if (const telemetry::Json* s = e.find("schedule"); s != nullptr) {
      MFBC_CHECK(s->is_number(), "tune profile: \"schedule\" must be numeric");
      key.schedule = static_cast<int>(s->as_double());
    }
    if (const telemetry::Json* d = e.find("partition"); d != nullptr) {
      MFBC_CHECK(d->is_number(), "tune profile: \"partition\" must be numeric");
      key.partition = static_cast<int>(d->as_double());
    }
    if (const telemetry::Json* g = e.find("topology"); g != nullptr) {
      MFBC_CHECK(g->is_number(), "tune profile: \"topology\" must be numeric");
      key.topology = static_cast<int>(g->as_double());
    }
    if (const telemetry::Json* v = e.find("graph"); v != nullptr) {
      MFBC_CHECK(v->is_string(),
                 "tune profile: \"graph\" must be a hex string");
      const std::string& s = v->as_string();
      char* end = nullptr;
      key.graph = std::strtoull(s.c_str(), &end, 16);
      MFBC_CHECK(end != nullptr && *end == '\0' && !s.empty(),
                 "tune profile: malformed \"graph\" signature: " + s);
    }
    MFBC_CHECK(key.ranks >= 1, "tune profile: plan entry needs ranks >= 1");
    const telemetry::Json* p = e.find("plan");
    MFBC_CHECK(p != nullptr, "tune profile: plan entry missing \"plan\"");
    const dist::Plan plan = plan_from_json(*p);
    MFBC_CHECK(plan.total_ranks() <= key.ranks,
               "tune profile: plan uses more ranks than its key allows");
    entries_[key] = plan;
  }
}

}  // namespace mfbc::tune
