#include "tune/calibrate.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "algebra/multpath.hpp"
#include "dist/spgemm_dist.hpp"
#include "graph/generators.hpp"
#include "sim/comm.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace mfbc::tune {

namespace {

double num_field(const telemetry::Json& j, const char* key) {
  const telemetry::Json* f = j.find(key);
  MFBC_CHECK(f != nullptr && f->is_number(),
             std::string("tune profile: missing or non-numeric field: ") + key);
  return f->as_double();
}

void require_finite(double v, const char* what) {
  MFBC_CHECK(std::isfinite(v),
             std::string("tune profile: ") + what + " is not finite");
}

/// One calibration data point: per-component (predicted, measured) pairs in
/// seconds. pred_* come from the §5.2 model, meas_* off the ledger.
struct Sample {
  double pred_lat = 0, pred_bw = 0, pred_comp = 0;
  double meas_lat = 0, meas_bw = 0, meas_comp = 0;
};

/// 1-D least squares through the origin: scale minimizing Σ(s·x − y)².
/// Falls back to 1 when the data is degenerate (all-zero predictions) or the
/// fit would be non-positive/non-finite — a bad fit must never poison plan
/// selection worse than the uncalibrated model.
double fit_scale(const std::vector<Sample>& samples, double Sample::*x,
                 double Sample::*y) {
  double sxx = 0, sxy = 0;
  for (const Sample& s : samples) {
    sxx += (s.*x) * (s.*x);
    sxy += (s.*x) * (s.*y);
  }
  if (!(sxx > 0)) return 1.0;
  const double scale = sxy / sxx;
  if (!std::isfinite(scale) || !(scale > 0)) return 1.0;
  return scale;
}

double mean_abs_rel_err(const std::vector<Sample>& samples, double a_scale,
                        double b_scale, double c_scale) {
  if (samples.empty()) return 0;
  double sum = 0;
  for (const Sample& s : samples) {
    const double meas = s.meas_lat + s.meas_bw + s.meas_comp;
    if (!(meas > 0)) continue;
    const double pred =
        a_scale * s.pred_lat + b_scale * s.pred_bw + c_scale * s.pred_comp;
    sum += std::abs(pred - meas) / meas;
  }
  return sum / static_cast<double>(samples.size());
}

}  // namespace

sim::MachineModel Calibration::apply(const sim::MachineModel& mm) const {
  sim::MachineModel out = mm;
  out.alpha *= alpha_scale;
  out.beta *= beta_scale;
  out.seconds_per_op *= compute_scale;
  return out;
}

void Calibration::validate() const {
  require_finite(alpha_scale, "alpha_scale");
  require_finite(beta_scale, "beta_scale");
  require_finite(compute_scale, "compute_scale");
  MFBC_CHECK(alpha_scale > 0 && beta_scale > 0 && compute_scale > 0,
             "tune profile: calibration scales must be positive");
  MFBC_CHECK(samples >= 0, "tune profile: negative sample count");
}

telemetry::Json Profile::to_json() const {
  telemetry::Json j = telemetry::Json::object();
  j["schema"] = telemetry::Json(kProfileSchema);
  j["version"] = telemetry::Json(kProfileVersion);
  telemetry::Json m = telemetry::Json::object();
  m["alpha"] = telemetry::Json(machine.alpha);
  m["beta"] = telemetry::Json(machine.beta);
  m["seconds_per_op"] = telemetry::Json(machine.seconds_per_op);
  m["memory_words"] = telemetry::Json(machine.memory_words);
  j["machine"] = std::move(m);
  telemetry::Json c = telemetry::Json::object();
  c["alpha_scale"] = telemetry::Json(calibration.alpha_scale);
  c["beta_scale"] = telemetry::Json(calibration.beta_scale);
  c["compute_scale"] = telemetry::Json(calibration.compute_scale);
  c["samples"] = telemetry::Json(calibration.samples);
  c["err_before"] = telemetry::Json(calibration.err_before);
  c["err_after"] = telemetry::Json(calibration.err_after);
  j["calibration"] = std::move(c);
  if (observed_samples > 0) {
    telemetry::Json o = telemetry::Json::object();
    o["mean_abs_rel_err"] = telemetry::Json(observed_error);
    o["samples"] = telemetry::Json(static_cast<std::int64_t>(observed_samples));
    j["observed"] = std::move(o);
  }
  j["plans"] = plans;
  return j;
}

Profile Profile::from_json(const telemetry::Json& j) {
  MFBC_CHECK(j.is_object(), "tune profile: document must be a JSON object");
  const telemetry::Json* schema = j.find("schema");
  MFBC_CHECK(schema != nullptr && schema->is_string(),
             "tune profile: missing \"schema\"");
  MFBC_CHECK(schema->as_string() == kProfileSchema,
             "tune profile: schema mismatch: got \"" + schema->as_string() +
                 "\", want \"" + kProfileSchema + "\"");
  const int version = static_cast<int>(num_field(j, "version"));
  MFBC_CHECK(version == kProfileVersion,
             "tune profile: version mismatch: got " + std::to_string(version) +
                 ", want " + std::to_string(kProfileVersion));

  Profile p;
  const telemetry::Json* m = j.find("machine");
  MFBC_CHECK(m != nullptr && m->is_object(),
             "tune profile: missing \"machine\" object");
  p.machine.alpha = num_field(*m, "alpha");
  p.machine.beta = num_field(*m, "beta");
  p.machine.seconds_per_op = num_field(*m, "seconds_per_op");
  p.machine.memory_words = num_field(*m, "memory_words");
  MFBC_CHECK(p.machine.alpha > 0 && p.machine.beta > 0 &&
                 p.machine.seconds_per_op > 0 && p.machine.memory_words > 0,
             "tune profile: machine parameters must be positive");

  const telemetry::Json* c = j.find("calibration");
  MFBC_CHECK(c != nullptr && c->is_object(),
             "tune profile: missing \"calibration\" object");
  p.calibration.alpha_scale = num_field(*c, "alpha_scale");
  p.calibration.beta_scale = num_field(*c, "beta_scale");
  p.calibration.compute_scale = num_field(*c, "compute_scale");
  p.calibration.samples = static_cast<int>(num_field(*c, "samples"));
  p.calibration.err_before = num_field(*c, "err_before");
  p.calibration.err_after = num_field(*c, "err_after");
  p.calibration.validate();

  if (const telemetry::Json* o = j.find("observed")) {
    // Optional: profiles written before cross-run staleness tracking (or
    // never run after calibration) simply lack the block.
    MFBC_CHECK(o->is_object(), "tune profile: \"observed\" must be an object");
    p.observed_error = num_field(*o, "mean_abs_rel_err");
    p.observed_samples = static_cast<std::int64_t>(num_field(*o, "samples"));
    require_finite(p.observed_error, "observed error");
    MFBC_CHECK(p.observed_error >= 0 && p.observed_samples >= 0,
               "tune profile: observed error fields must be non-negative");
  }

  if (const telemetry::Json* plans = j.find("plans")) {
    PlanCache check;
    check.load_json(*plans);  // validates every entry before we accept it
    p.plans = *plans;
  }
  return p;
}

void Profile::save(const std::string& path) const {
  std::ofstream out(path);
  MFBC_CHECK(out.good(), "tune profile: cannot open for writing: " + path);
  out << to_json().dump(2) << "\n";
  MFBC_CHECK(out.good(), "tune profile: write failed: " + path);
}

Profile Profile::load(const std::string& path) {
  std::ifstream in(path);
  MFBC_CHECK(in.good(), "tune profile: cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(telemetry::Json::parse(buf.str()));
}

void Profile::check_machine(const sim::MachineModel& mm) const {
  const bool same =
      machine.alpha == mm.alpha && machine.beta == mm.beta &&
      machine.seconds_per_op == mm.seconds_per_op &&
      machine.memory_words == mm.memory_words;
  MFBC_CHECK(same,
             "tune profile: machine signature mismatch (profile was "
             "calibrated for a different machine model)");
}

std::optional<Profile> try_load_profile(const std::string& path,
                                        const sim::MachineModel& mm,
                                        std::string* error) {
  try {
    Profile p = Profile::load(path);
    p.check_machine(mm);
    return p;
  } catch (const Error& e) {
    if (error) *error = e.what();
    std::fprintf(stderr,
                 "tune: ignoring profile %s (falling back to the "
                 "uncalibrated model): %s\n",
                 path.c_str(), e.what());
    return std::nullopt;
  }
}

Profile calibrate(const CalibrateOptions& opts) {
  using algebra::BellmanFordAction;
  using algebra::Multpath;
  using algebra::MultpathMonoid;
  using algebra::SumMonoid;
  using dist::DistMatrix;
  using dist::Layout;
  using dist::Range;

  MFBC_CHECK(opts.ranks >= 1, "calibrate: ranks must be positive");
  MFBC_CHECK(opts.n >= 2 && opts.nb >= 1 && opts.nb <= opts.n,
             "calibrate: need 2 <= nb <= n");
  telemetry::Span span("tune.calibrate");
  span.attr("ranks", static_cast<std::int64_t>(opts.ranks));

  std::vector<Sample> samples;
  std::uint64_t seed = opts.seed;
  for (double degree : opts.degrees) {
    graph::Graph g = graph::erdos_renyi(
        opts.n, static_cast<sparse::nnz_t>(static_cast<double>(opts.n) * degree),
        false, {}, seed++);
    sparse::Coo<Multpath> fc(opts.nb, opts.n);
    for (graph::vid_t s = 0; s < opts.nb; ++s) {
      auto cols = g.adj().row_cols(s);
      auto vals = g.adj().row_vals(s);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        fc.push(s, cols[i], Multpath{vals[i], 1.0});
      }
    }
    auto f = sparse::Csr<Multpath>::from_coo<MultpathMonoid>(std::move(fc));
    const auto stats = dist::MultiplyStats::estimated(
        opts.nb, opts.n, opts.n, static_cast<double>(f.nnz()),
        static_cast<double>(g.adj().nnz()),
        sim::sparse_entry_words<Multpath>(), sim::sparse_entry_words<double>(),
        sim::sparse_entry_words<Multpath>());

    for (const dist::Plan& plan : dist::enumerate_plans(opts.ranks)) {
      sim::Sim sim(opts.ranks, opts.machine);
      Layout lf{0, 1, opts.ranks, Range{0, opts.nb}, Range{0, opts.n}, false};
      Layout la{0, 1, opts.ranks, Range{0, opts.n}, Range{0, opts.n}, false};
      auto df = DistMatrix<Multpath>::scatter<MultpathMonoid>(sim, f, lf);
      auto da = DistMatrix<double>::scatter<SumMonoid>(sim, g.adj(), la);
      sim.ledger().reset();
      dist::spgemm<MultpathMonoid>(sim, plan, df, da, BellmanFordAction{}, lf);
      const sim::Cost meas = sim.ledger().critical();
      const dist::ModelCost pred = model_cost(plan, stats, opts.machine);
      Sample s;
      s.pred_lat = pred.latency;
      // Remap is a β-dominated all-to-all in the model; fold it into the
      // bandwidth component so the fit sees one β axis.
      s.pred_bw = pred.bandwidth + pred.remap;
      s.pred_comp = pred.compute;
      s.meas_lat = meas.msgs * opts.machine.alpha;
      s.meas_bw = meas.words * opts.machine.beta;
      s.meas_comp = meas.compute_seconds;
      samples.push_back(s);
    }
  }

  Profile profile;
  profile.machine = opts.machine;
  Calibration& cal = profile.calibration;
  cal.alpha_scale = fit_scale(samples, &Sample::pred_lat, &Sample::meas_lat);
  cal.beta_scale = fit_scale(samples, &Sample::pred_bw, &Sample::meas_bw);
  cal.compute_scale =
      fit_scale(samples, &Sample::pred_comp, &Sample::meas_comp);

  if (opts.measure_flop_rate) {
    // Wall-clock one local multiply to refine the flop-rate correction with
    // the real machine's throughput (opt-in: host-dependent by design).
    sim::Sim sim(1, opts.machine);
    graph::Graph g = graph::erdos_renyi(opts.n, opts.n * 8, false, {}, seed);
    Layout l1{0, 1, 1, Range{0, opts.n}, Range{0, opts.n}, false};
    auto da = DistMatrix<double>::scatter<SumMonoid>(sim, g.adj(), l1);
    dist::DistSpgemmStats st;
    const auto t0 = std::chrono::steady_clock::now();
    dist::spgemm<SumMonoid>(
        sim, dist::Plan{}, da, da,
        [](double x, double y) { return x * y; }, l1, &st);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (st.total_ops > 0 && secs > 0) {
      const double measured_spo = secs / static_cast<double>(st.total_ops);
      const double scale = measured_spo / opts.machine.seconds_per_op;
      if (std::isfinite(scale) && scale > 0) cal.compute_scale = scale;
    }
  }

  cal.samples = static_cast<int>(samples.size());
  cal.err_before = mean_abs_rel_err(samples, 1, 1, 1);
  cal.err_after = mean_abs_rel_err(samples, cal.alpha_scale, cal.beta_scale,
                                   cal.compute_scale);
  cal.validate();
  span.attr("samples", static_cast<std::int64_t>(cal.samples));
  span.attr("alpha_scale", cal.alpha_scale);
  span.attr("beta_scale", cal.beta_scale);
  span.attr("compute_scale", cal.compute_scale);
  span.attr("err_before", cal.err_before);
  span.attr("err_after", cal.err_after);
  return profile;
}

Tuner::Tuner(Profile profile, TunerOptions opts)
    : profile_(std::move(profile)), opts_(opts) {
  if (opts_.use_cache && profile_.plans.is_array()) {
    cache_.load_json(profile_.plans);
  }
  // Cross-run staleness: the profile records the prediction error its last
  // run actually observed. When that drifted far past what the calibration
  // promised (err_after), the fitted scales no longer describe the workload
  // or the machine — warn once and expose profile_stale().
  if (profile_.calibration.calibrated() && profile_.observed_samples > 0) {
    const double expected = std::max(profile_.calibration.err_after,
                                     opts_.stale_error_floor);
    if (profile_.observed_error > opts_.stale_error_factor * expected) {
      stale_ = true;
      telemetry::count("tune.profile.stale");
      std::fprintf(stderr,
                   "tune: warning: calibration looks stale — last run "
                   "observed mean |pred err| %.3f over %lld multiplies vs "
                   "%.3f promised by the fit; re-run --calibrate\n",
                   profile_.observed_error,
                   static_cast<long long>(profile_.observed_samples),
                   profile_.calibration.err_after);
    }
  }
}

PlanKey Tuner::make_key(const PlanRequest& req,
                        const dist::MultiplyStats& stats) const {
  PlanKey key;
  key.monoid = req.monoid;
  key.m = stats.m;
  key.k = stats.k;
  key.n = stats.n;
  key.band_a = PlanKey::nnz_band(stats.nnz_a);
  key.band_b = PlanKey::nnz_band(stats.nnz_b);
  key.ranks = req.ranks;
  key.threads = opts_.thread_scoped_cache ? support::num_threads() : 0;
  // The schedule axis is part of the request shape: a sync-only search and
  // an async-enabled search rank different candidate spaces, so their
  // winners live under different keys.
  key.schedule = req.opts.allow_async ? 1 : 0;
  // So is the distribution axis: the data's actual placement plus whether
  // the advisory other-distribution twins were in the candidate space.
  key.partition = (req.opts.partition == dist::Dist::kBalanced ? 1 : 0) |
                  (req.opts.allow_partition ? 2 : 0);
  // And the topology epoch: plans chosen before a grid shrink were priced
  // for a placement that no longer exists.
  key.topology = req.topology;
  // And the graph version: a mutated adjacency is a different operand even
  // when its dims and nnz band happen to match.
  key.graph = req.graph_sig;
  return key;
}

dist::Plan Tuner::plan(const PlanRequest& req) {
  MFBC_CHECK(req.ranks >= 1, "tune: plan request needs ranks >= 1");
  telemetry::Span span("tune.plan");
  span.attr("stream", req.stream);
  telemetry::count("tune.plan.calls");
  ++replans_;
  observer_.set_stream(req.stream);

  // Correct the §5.2 uniform estimates with the stream's last measured
  // ratios: how many products actually fired per modelled product, and how
  // dense the output actually was. Clamped so one pathological iteration
  // cannot fling the model into nonsense.
  dist::MultiplyStats stats = req.stats;
  if (opts_.learn_ratios) {
    if (auto last = observer_.last(req.stream)) {
      const auto clamp = [](double r) {
        if (!std::isfinite(r) || r <= 0) return 1.0;
        return std::min(64.0, std::max(1.0 / 64.0, r));
      };
      if (last->est_ops > 0 && last->ops > 0 && stats.ops > 0) {
        stats.ops *= clamp(last->ops / last->est_ops);
      }
      if (last->est_nnz_c > 0 && last->nnz_c > 0 && stats.nnz_c > 0) {
        stats.nnz_c *= clamp(last->nnz_c / last->est_nnz_c);
        const double dense =
            static_cast<double>(stats.m) * static_cast<double>(stats.n);
        if (stats.nnz_c > dense) stats.nnz_c = dense;
      }
    }
  }

  // Plan selection runs on the calibrated model; charging stays on the real
  // one, so this can only change *which* plan runs, never what it costs.
  const sim::MachineModel planning_mm = profile_.calibration.apply(req.machine);

  dist::Plan candidate;
  bool cache_hit = false;
  const PlanKey key = make_key(req, stats);
  if (opts_.use_cache) {
    if (auto hit = cache_.find(key)) {
      const bool usable =
          hit->total_ranks() <= req.ranks &&
          // Schedule gate: a profile edited or written by an async-enabled
          // run must not hand an async plan to a sync-only request.
          (req.opts.allow_async || !hit->is_async()) &&
          // Distribution gate: a cached plan only applies when it matches
          // the request's data placement (unless the advisory twins were
          // requested, in which case both distributions were candidates).
          (req.opts.allow_partition || hit->dist == req.opts.partition) &&
          model_memory_words(*hit, stats) <= req.opts.memory_words_limit;
      if (usable) {
        candidate = *hit;
        cache_hit = true;
      }
    }
  }
  if (!cache_hit) {
    dist::TuneReport report;
    candidate = dist::autotune(req.ranks, stats, planning_mm, req.opts,
                               &report);
    pruned_memory_ += static_cast<std::uint64_t>(report.pruned_memory);
    if (report.pruned_memory > 0) {
      span.attr("pruned.memory",
                static_cast<std::int64_t>(report.pruned_memory));
    }
    if (opts_.use_cache) cache_.insert(key, candidate);
  }
  telemetry::count(cache_hit ? "tune.cache.hits" : "tune.cache.misses");

  dist::Plan final_plan = candidate;
  auto cur_it = current_.find(req.stream);
  if (opts_.hysteresis && cur_it != current_.end() &&
      !(cur_it->second == candidate)) {
    const dist::Plan& cur = cur_it->second;
    const bool cur_fits =
        model_memory_words(cur, stats) <= req.opts.memory_words_limit;
    if (cur_fits) {
      const double cost_cur = model_cost(cur, stats, planning_mm).total();
      const double cost_new = model_cost(candidate, stats, planning_mm).total();
      const double win = cost_cur - cost_new;
      // Switching to a plan this stream has not run yet re-homes the
      // stationary operand B: an all-to-all of nnz(B) wire words (replicated
      // p1-fold when the 1D level broadcasts B), plus the usual tree α term
      // — the amortization dist/spgemm_dist.hpp documents for its HomeCache.
      // A plan already seen keeps its cached homes, so returning is free.
      // The seen set keys on the *sync shape*: an async plan and its sync
      // twin share operand home layouts (dist::Plan::sync_shape), so
      // flipping the schedule of a shape this stream already runs moves no
      // data and costs nothing.
      double switch_cost = 0;
      if (!seen_[req.stream].count(candidate.sync_shape().to_string())) {
        const double repl =
            (candidate.has_1d() && candidate.v1 == dist::Variant1D::kB)
                ? static_cast<double>(candidate.p1)
                : 1.0;
        switch_cost =
            (stats.nnz_b * stats.words_b / req.ranks) * repl *
                planning_mm.beta +
            2.0 * sim::log2_ceil(req.ranks) * planning_mm.alpha;
      }
      if (win > opts_.switch_margin * switch_cost) {
        ++switches_;
        telemetry::count("tune.plan.switches");
      } else {
        final_plan = cur;
        ++holds_;
      }
    } else {
      // The held plan no longer fits in memory; forced switch.
      ++switches_;
      telemetry::count("tune.plan.switches");
    }
  }

  current_[req.stream] = final_plan;
  seen_[req.stream].insert(final_plan.sync_shape().to_string());
  span.attr("chosen", final_plan.to_string());
  span.attr("cache_hit", cache_hit ? std::string("yes") : std::string("no"));
  return final_plan;
}

Profile Tuner::snapshot_profile() const {
  Profile p = profile_;
  p.plans = cache_.to_json();
  // Fold this run's observed prediction error into the profile, so the next
  // load can judge whether the calibration still describes the workload.
  const ErrorStats overall = observer_.overall();
  if (overall.count > 0) {
    p.observed_error = overall.mean_abs_rel();
    p.observed_samples = overall.count;
  }
  return p;
}

void Tuner::save(const std::string& path) const {
  snapshot_profile().save(path);
}

telemetry::Json Tuner::json() const {
  telemetry::Json j = telemetry::Json::object();
  telemetry::Json c = telemetry::Json::object();
  c["calibrated"] = telemetry::Json(profile_.calibration.calibrated());
  c["alpha_scale"] = telemetry::Json(profile_.calibration.alpha_scale);
  c["beta_scale"] = telemetry::Json(profile_.calibration.beta_scale);
  c["compute_scale"] = telemetry::Json(profile_.calibration.compute_scale);
  c["samples"] = telemetry::Json(profile_.calibration.samples);
  c["err_before"] = telemetry::Json(profile_.calibration.err_before);
  c["err_after"] = telemetry::Json(profile_.calibration.err_after);
  j["calibration"] = std::move(c);

  telemetry::Json pr = telemetry::Json::object();
  const ErrorStats overall = observer_.overall();
  pr["observations"] = telemetry::Json(overall.count);
  pr["mean_abs_rel_err"] = telemetry::Json(overall.mean_abs_rel());
  pr["worst_abs_rel_err"] = telemetry::Json(overall.worst);
  telemetry::Json pv = telemetry::Json::object();
  for (const auto& [variant, st] : observer_.per_variant()) {
    telemetry::Json v = telemetry::Json::object();
    v["count"] = telemetry::Json(st.count);
    v["mean_abs_rel_err"] = telemetry::Json(st.mean_abs_rel());
    v["worst_abs_rel_err"] = telemetry::Json(st.worst);
    pv[variant] = std::move(v);
  }
  pr["per_variant"] = std::move(pv);
  j["prediction"] = std::move(pr);

  telemetry::Json cj = telemetry::Json::object();
  cj["entries"] = telemetry::Json(cache_.size());
  cj["hits"] = telemetry::Json(cache_.hits());
  cj["misses"] = telemetry::Json(cache_.misses());
  cj["hit_rate"] = telemetry::Json(cache_.hit_rate());
  j["cache"] = std::move(cj);

  j["replans"] = telemetry::Json(replans_);
  j["plan_switches"] = telemetry::Json(switches_);
  j["hysteresis_holds"] = telemetry::Json(holds_);
  j["pruned_memory"] = telemetry::Json(pruned_memory_);
  j["profile_stale"] = telemetry::Json(stale_);
  return j;
}

void Tuner::reset_stream_state() {
  current_.clear();
  seen_.clear();
}

void Tuner::seed_stream(const std::string& stream, const dist::Plan& plan) {
  if (current_.count(stream) != 0) return;
  current_[stream] = plan;
  seen_[stream].insert(plan.sync_shape().to_string());
}

}  // namespace mfbc::tune
