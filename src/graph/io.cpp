#include "graph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace mfbc::graph {

namespace {

struct RawEdges {
  std::vector<Edge> edges;
  vid_t n = 0;
};

RawEdges parse_lines(std::istream& in, bool weighted, bool one_indexed) {
  RawEdges out;
  std::unordered_map<vid_t, vid_t> remap;
  auto intern = [&](vid_t raw) {
    auto [it, inserted] = remap.emplace(raw, out.n);
    if (inserted) ++out.n;
    return it->second;
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    vid_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      throw Error("malformed edge list line: '" + line + "'");
    }
    double w = 1.0;
    if (weighted && !(ls >> w)) {
      throw Error("missing weight on line: '" + line + "'");
    }
    if (one_indexed) {
      --u;
      --v;
    }
    MFBC_CHECK(u >= 0 && v >= 0, "negative vertex id in edge list");
    out.edges.push_back({intern(u), intern(v), w});
  }
  return out;
}

}  // namespace

Graph read_edge_list(std::istream& in, const EdgeListOptions& opts) {
  RawEdges raw = parse_lines(in, opts.weighted, opts.one_indexed);
  return Graph::from_edges(raw.n, raw.edges, opts.directed, opts.weighted);
}

Graph read_edge_list_file(const std::string& path,
                          const EdgeListOptions& opts) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open graph file: " + path);
  return read_edge_list(in, opts);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  const auto& adj = g.adj();
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    auto cols = adj.row_cols(r);
    auto vals = adj.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (!g.directed() && cols[i] < r) continue;  // one direction only
      out << r << ' ' << cols[i] << ' ' << vals[i] << '\n';
    }
  }
}

Graph read_matrix_market(std::istream& in) {
  std::string line;
  MFBC_CHECK(static_cast<bool>(std::getline(in, line)), "empty MatrixMarket file");
  MFBC_CHECK(line.rfind("%%MatrixMarket", 0) == 0, "missing MatrixMarket banner");
  const bool symmetric = line.find("symmetric") != std::string::npos;
  const bool pattern = line.find("pattern") != std::string::npos;
  // Skip comments; first data line is "nrows ncols nnz".
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream hs(line);
  vid_t nrows = 0, ncols = 0;
  nnz_t nz = 0;
  MFBC_CHECK(static_cast<bool>(hs >> nrows >> ncols >> nz),
             "malformed MatrixMarket size line");
  MFBC_CHECK(nrows == ncols, "adjacency matrix must be square");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(nz));
  for (nnz_t i = 0; i < nz; ++i) {
    MFBC_CHECK(static_cast<bool>(std::getline(in, line)),
               "MatrixMarket file truncated");
    std::istringstream ls(line);
    vid_t u = 0, v = 0;
    double w = 1.0;
    MFBC_CHECK(static_cast<bool>(ls >> u >> v), "malformed MatrixMarket entry");
    if (!pattern) ls >> w;
    edges.push_back({u - 1, v - 1, w});
  }
  return Graph::from_edges(nrows, edges, /*directed=*/!symmetric, !pattern);
}

void write_matrix_market(std::ostream& out, const Graph& g) {
  out << "%%MatrixMarket matrix coordinate "
      << (g.weighted() ? "real" : "pattern") << ' '
      << (g.directed() ? "general" : "symmetric") << '\n';
  // Count emitted entries first (undirected: lower triangle only).
  nnz_t count = 0;
  const auto& adj = g.adj();
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    for (vid_t c : adj.row_cols(r)) {
      if (g.directed() || c <= r) ++count;
    }
  }
  out << g.n() << ' ' << g.n() << ' ' << count << '\n';
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    auto cols = adj.row_cols(r);
    auto vals = adj.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (!g.directed() && cols[i] > r) continue;
      out << (r + 1) << ' ' << (cols[i] + 1);
      if (g.weighted()) out << ' ' << vals[i];
      out << '\n';
    }
  }
}

}  // namespace mfbc::graph
