#include "graph/io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace mfbc::graph {

namespace {

/// Where a parse error happened; every diagnostic leads with source:line.
struct LineCtx {
  const std::string& source;
  std::size_t line = 0;  ///< 1-based

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error(source + ":" + std::to_string(line) + ": " + msg);
  }
};

/// Parse one vertex id token: rejects non-numeric text, trailing garbage,
/// and values that overflow vid_t (int64).
vid_t parse_vid(const std::string& tok, const LineCtx& ctx,
                const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0') {
    ctx.fail(std::string("non-numeric ") + what + " '" + tok + "'");
  }
  if (errno == ERANGE) {
    ctx.fail(std::string("overflowing ") + what + " '" + tok + "'");
  }
  return static_cast<vid_t>(v);
}

/// Parse one edge weight token: must be a finite, non-negative number
/// (negative or NaN/inf weights would silently break the min-plus algebra).
double parse_weight(const std::string& tok, const LineCtx& ctx) {
  errno = 0;
  char* end = nullptr;
  const double w = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    ctx.fail("non-numeric edge weight '" + tok + "'");
  }
  if (!std::isfinite(w)) ctx.fail("non-finite edge weight '" + tok + "'");
  if (w < 0) ctx.fail("negative edge weight '" + tok + "'");
  return w;
}

struct RawEdges {
  std::vector<Edge> edges;
  vid_t n = 0;
};

RawEdges parse_lines(std::istream& in, bool weighted, bool one_indexed,
                     const std::string& source) {
  RawEdges out;
  std::unordered_map<vid_t, vid_t> remap;
  auto intern = [&](vid_t raw) {
    auto [it, inserted] = remap.emplace(raw, out.n);
    if (inserted) ++out.n;
    return it->second;
  };
  std::string line;
  LineCtx ctx{source, 0};
  while (std::getline(in, line)) {
    ++ctx.line;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::string ut, vt, wt;
    if (!(ls >> ut >> vt)) {
      ctx.fail("truncated edge (expected 'u v" +
               std::string(weighted ? " w" : "") + "'): '" + line + "'");
    }
    vid_t u = parse_vid(ut, ctx, "vertex id");
    vid_t v = parse_vid(vt, ctx, "vertex id");
    double w = 1.0;
    if (weighted) {
      if (!(ls >> wt)) ctx.fail("missing edge weight: '" + line + "'");
      w = parse_weight(wt, ctx);
    }
    if (one_indexed) {
      --u;
      --v;
    }
    if (u < 0 || v < 0) {
      ctx.fail("negative vertex id " + std::to_string(std::min(u, v)) +
               (one_indexed ? " (ids are 1-based here)" : ""));
    }
    out.edges.push_back({intern(u), intern(v), w});
  }
  return out;
}

}  // namespace

Graph read_edge_list(std::istream& in, const EdgeListOptions& opts,
                     const std::string& source) {
  RawEdges raw = parse_lines(in, opts.weighted, opts.one_indexed, source);
  return Graph::from_edges(raw.n, raw.edges, opts.directed, opts.weighted);
}

Graph read_edge_list_file(const std::string& path,
                          const EdgeListOptions& opts) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open graph file: " + path);
  return read_edge_list(in, opts, path);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  const auto& adj = g.adj();
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    auto cols = adj.row_cols(r);
    auto vals = adj.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (!g.directed() && cols[i] < r) continue;  // one direction only
      out << r << ' ' << cols[i] << ' ' << vals[i] << '\n';
    }
  }
}

Graph read_matrix_market(std::istream& in, const std::string& source) {
  std::string line;
  LineCtx ctx{source, 0};
  if (!std::getline(in, line)) {
    ctx.line = 1;
    ctx.fail("empty MatrixMarket file");
  }
  ++ctx.line;
  if (line.rfind("%%MatrixMarket", 0) != 0) {
    ctx.fail("missing MatrixMarket banner");
  }
  const bool symmetric = line.find("symmetric") != std::string::npos;
  const bool pattern = line.find("pattern") != std::string::npos;
  // Skip comments; first data line is "nrows ncols nnz".
  bool have_size = false;
  while (std::getline(in, line)) {
    ++ctx.line;
    if (!line.empty() && line[0] != '%') {
      have_size = true;
      break;
    }
  }
  if (!have_size) ctx.fail("truncated MatrixMarket file: no size line");
  std::istringstream hs(line);
  std::string rt, ct, zt;
  if (!(hs >> rt >> ct >> zt)) {
    ctx.fail("malformed MatrixMarket size line: '" + line + "'");
  }
  const vid_t nrows = parse_vid(rt, ctx, "row count");
  const vid_t ncols = parse_vid(ct, ctx, "column count");
  const nnz_t nz = parse_vid(zt, ctx, "entry count");
  if (nrows < 0 || ncols < 0 || nz < 0) {
    ctx.fail("negative MatrixMarket dimensions");
  }
  if (nrows != ncols) ctx.fail("adjacency matrix must be square");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(nz));
  for (nnz_t i = 0; i < nz; ++i) {
    if (!std::getline(in, line)) {
      ctx.line += 1;
      ctx.fail("MatrixMarket file truncated: expected " + std::to_string(nz) +
               " entries, got " + std::to_string(i));
    }
    ++ctx.line;
    std::istringstream ls(line);
    std::string ut, vt, wt;
    if (!(ls >> ut >> vt)) {
      ctx.fail("truncated MatrixMarket entry: '" + line + "'");
    }
    const vid_t u = parse_vid(ut, ctx, "vertex id");
    const vid_t v = parse_vid(vt, ctx, "vertex id");
    if (u < 1 || u > nrows || v < 1 || v > nrows) {
      ctx.fail("vertex id out of range [1, " + std::to_string(nrows) +
               "]: '" + line + "'");
    }
    double w = 1.0;
    if (!pattern && (ls >> wt)) w = parse_weight(wt, ctx);
    edges.push_back({u - 1, v - 1, w});
  }
  return Graph::from_edges(nrows, edges, /*directed=*/!symmetric, !pattern);
}

void write_matrix_market(std::ostream& out, const Graph& g) {
  out << "%%MatrixMarket matrix coordinate "
      << (g.weighted() ? "real" : "pattern") << ' '
      << (g.directed() ? "general" : "symmetric") << '\n';
  // Count emitted entries first (undirected: lower triangle only).
  nnz_t count = 0;
  const auto& adj = g.adj();
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    for (vid_t c : adj.row_cols(r)) {
      if (g.directed() || c <= r) ++count;
    }
  }
  out << g.n() << ' ' << g.n() << ' ' << count << '\n';
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    auto cols = adj.row_cols(r);
    auto vals = adj.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (!g.directed() && cols[i] > r) continue;
      out << (r + 1) << ' ' << (cols[i] + 1);
      if (g.weighted()) out << ' ' << vals[i];
      out << '\n';
    }
  }
}

}  // namespace mfbc::graph
