// Synthetic stand-ins for the paper's real-world SNAP graphs (Table 2).
//
// The evaluation uses Friendster, Orkut, LiveJournal, and the patent
// citation graph. Those datasets (up to 1.8B edges) are neither shipped with
// this repository nor tractable on a single host, so each is replaced by a
// *scaled-down proxy*: an R-MAT power-law graph matching the original's
//   * directedness,
//   * average degree m/n,
//   * diameter class (low-diameter social network vs. higher-diameter
//     citation graph — controlled by the R-MAT skew),
// with n shrunk by a caller-chosen power of two. BC performance in the paper
// is driven by density (cost of each frontier multiply), diameter (number of
// multiplies), and directedness (forward vs. backward sparsity), so the
// proxies preserve the shape of the Figure 1 / Table 3 comparisons. Real
// SNAP files can be substituted through graph/io.hpp at any time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mfbc::graph {

enum class SnapId { kFriendster, kOrkut, kLiveJournal, kPatents };

struct SnapSpec {
  SnapId id;
  std::string name;        ///< paper's ID column ("frd", "ork", ...)
  std::string full_name;
  bool directed;
  double n_real;           ///< Table 2 n
  double m_real;           ///< Table 2 m
  vid_t diameter_real;     ///< Table 2 d
  double eff_diameter_real;  ///< Table 2 d̄
  int default_scale;       ///< log2 of the default proxy vertex count
  double rmat_a;           ///< R-MAT skew chosen to land in the right
                           ///< diameter class at proxy size
};

/// Specs for all four Table 2 graphs, in the paper's order (sorted by m).
const std::vector<SnapSpec>& snap_specs();

const SnapSpec& snap_spec(SnapId id);

/// Build the proxy at `scale` (log2 vertex count); scale <= 0 uses the
/// spec's default. Isolated vertices are removed and ids randomly relabeled,
/// mirroring the paper's preprocessing (§7.1) and the §5.2 load-balance
/// precondition.
Graph snap_proxy(SnapId id, int scale = 0, std::uint64_t seed = 0x5eed);

}  // namespace mfbc::graph
