#include "graph/more_generators.hpp"

#include <unordered_set>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace mfbc::graph {

namespace {

std::uint64_t pack(vid_t u, vid_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
}

Weight draw_weight(Xoshiro256& rng, const WeightSpec& ws) {
  return ws.weighted ? rng.weight(ws.wmin, ws.wmax) : 1.0;
}

}  // namespace

Graph watts_strogatz(vid_t n, int k, double beta, WeightSpec ws,
                     std::uint64_t seed) {
  MFBC_CHECK(n >= 4, "watts_strogatz requires n >= 4");
  MFBC_CHECK(k >= 2 && k % 2 == 0 && k < n, "k must be even and < n");
  MFBC_CHECK(beta >= 0.0 && beta <= 1.0, "rewiring probability in [0,1]");
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> edges;
  for (vid_t u = 0; u < n; ++u) {
    for (int d = 1; d <= k / 2; ++d) {
      vid_t v = (u + d) % n;
      if (rng.uniform01() < beta) {
        // Rewire to a uniform random endpoint, avoiding loops/duplicates.
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto w =
              static_cast<vid_t>(rng.bounded(static_cast<std::uint64_t>(n)));
          if (w != u && !seen.count(pack(u, w))) {
            v = w;
            break;
          }
        }
      }
      if (u == v || seen.count(pack(u, v))) continue;
      seen.insert(pack(u, v));
      edges.push_back({u, v, draw_weight(rng, ws)});
    }
  }
  return Graph::from_edges(n, edges, /*directed=*/false, ws.weighted);
}

Graph barabasi_albert(vid_t n, int m, WeightSpec ws, std::uint64_t seed) {
  MFBC_CHECK(m >= 1 && n > m, "need n > m >= 1");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  // Repeated-endpoint list: picking a uniform element of `targets` is
  // degree-proportional sampling.
  std::vector<vid_t> targets;
  // Seed clique over the first m+1 vertices.
  for (vid_t u = 0; u <= m; ++u) {
    for (vid_t v = u + 1; v <= m; ++v) {
      edges.push_back({u, v, draw_weight(rng, ws)});
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  std::unordered_set<std::uint64_t> seen;
  for (const Edge& e : edges) seen.insert(pack(e.u, e.v));
  for (vid_t u = m + 1; u < n; ++u) {
    int added = 0;
    int attempts = 0;
    while (added < m && attempts < 64 * m) {
      ++attempts;
      const vid_t v = targets[static_cast<std::size_t>(
          rng.bounded(targets.size()))];
      if (v == u || seen.count(pack(u, v))) continue;
      seen.insert(pack(u, v));
      edges.push_back({u, v, draw_weight(rng, ws)});
      ++added;
    }
    for (int i = 0; i < added; ++i) targets.push_back(u);
    for (std::size_t i = edges.size() - static_cast<std::size_t>(added);
         i < edges.size(); ++i) {
      targets.push_back(edges[i].v);
    }
  }
  return Graph::from_edges(n, edges, /*directed=*/false, ws.weighted);
}

Graph grid_2d(vid_t side, bool torus, WeightSpec ws, std::uint64_t seed) {
  MFBC_CHECK(side >= 2, "grid side must be >= 2");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  auto id = [side](vid_t r, vid_t c) { return r * side + c; };
  for (vid_t r = 0; r < side; ++r) {
    for (vid_t c = 0; c < side; ++c) {
      if (c + 1 < side) {
        edges.push_back({id(r, c), id(r, c + 1), draw_weight(rng, ws)});
      } else if (torus && side > 2) {
        edges.push_back({id(r, c), id(r, 0), draw_weight(rng, ws)});
      }
      if (r + 1 < side) {
        edges.push_back({id(r, c), id(r + 1, c), draw_weight(rng, ws)});
      } else if (torus && side > 2) {
        edges.push_back({id(r, c), id(0, c), draw_weight(rng, ws)});
      }
    }
  }
  return Graph::from_edges(side * side, edges, /*directed=*/false,
                           ws.weighted);
}

}  // namespace mfbc::graph
