#include "graph/generators.hpp"

#include <unordered_set>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace mfbc::graph {

namespace {

/// Pack an edge into one u64 for dedup sets (n < 2^32 is enforced by the
/// generators; the library's CSR itself has no such limit).
std::uint64_t pack(vid_t u, vid_t v) {
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
}

Weight draw_weight(Xoshiro256& rng, const WeightSpec& ws) {
  return ws.weighted ? rng.weight(ws.wmin, ws.wmax) : 1.0;
}

}  // namespace

Graph erdos_renyi(vid_t n, nnz_t m, bool directed, WeightSpec ws,
                  std::uint64_t seed) {
  MFBC_CHECK(n >= 2, "erdos_renyi requires n >= 2");
  MFBC_CHECK(n < (vid_t{1} << 32), "generator limit: n < 2^32");
  const double max_edges = static_cast<double>(n) * (n - 1) / (directed ? 1 : 2);
  MFBC_CHECK(static_cast<double>(m) <= 0.8 * max_edges,
             "requested edge count too close to complete graph");
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  while (static_cast<nnz_t>(edges.size()) < m) {
    vid_t u = static_cast<vid_t>(rng.bounded(static_cast<std::uint64_t>(n)));
    vid_t v = static_cast<vid_t>(rng.bounded(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    // For undirected graphs canonicalize so {u,v} is drawn once.
    if (!directed && u > v) std::swap(u, v);
    if (!seen.insert(pack(u, v)).second) continue;
    edges.push_back({u, v, draw_weight(rng, ws)});
  }
  return Graph::from_edges(n, edges, directed, ws.weighted);
}

Graph erdos_renyi_percent(vid_t n, double f_percent, bool directed,
                          WeightSpec ws, std::uint64_t seed) {
  MFBC_CHECK(f_percent > 0, "edge percentage must be positive");
  const auto m = static_cast<nnz_t>(f_percent / 100.0 * static_cast<double>(n) *
                                    static_cast<double>(n) /
                                    (directed ? 1.0 : 2.0));
  return erdos_renyi(n, std::max<nnz_t>(m, n), directed, ws, seed);
}

Graph rmat(const RmatParams& params, std::uint64_t seed) {
  MFBC_CHECK(params.scale >= 1 && params.scale < 31, "rmat scale out of range");
  const double d = 1.0 - params.a - params.b - params.c;
  MFBC_CHECK(params.a > 0 && params.b > 0 && params.c > 0 && d > 0,
             "rmat quadrant probabilities must be positive and sum below 1");
  const vid_t n = vid_t{1} << params.scale;
  const auto target =
      static_cast<nnz_t>(params.edge_factor * static_cast<double>(n));
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(target) * 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(target));
  // Standard R-MAT: drop one edge per recursive quadrant descent; duplicates
  // are merged, giving the usual sub-linear realized density.
  nnz_t attempts = 0;
  const nnz_t max_attempts = target * 4;
  while (static_cast<nnz_t>(edges.size()) < target && attempts < max_attempts) {
    ++attempts;
    vid_t u = 0, v = 0;
    for (int bit = params.scale - 1; bit >= 0; --bit) {
      const double r = rng.uniform01();
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < params.a + params.b) {
        v |= vid_t{1} << bit;
      } else if (r < params.a + params.b + params.c) {
        u |= vid_t{1} << bit;
      } else {
        u |= vid_t{1} << bit;
        v |= vid_t{1} << bit;
      }
    }
    if (u == v) continue;
    vid_t cu = u, cv = v;
    if (!params.directed && cu > cv) std::swap(cu, cv);
    if (!seen.insert(pack(cu, cv)).second) continue;
    edges.push_back({cu, cv, draw_weight(rng, params.weights)});
  }
  return Graph::from_edges(n, edges, params.directed, params.weights.weighted);
}

}  // namespace mfbc::graph
