// Structural graph metrics: BFS levels, connectivity, diameter estimates,
// degree statistics. Used by tests, the Table 2 reproduction, and the
// workload generators' self-reports.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mfbc::graph {

/// Hop distances from `source` following out-edges (-1 = unreachable).
std::vector<vid_t> bfs_levels(const Graph& g, vid_t source);

/// Number of weakly connected components.
vid_t weakly_connected_components(const Graph& g);

/// Count of vertices reachable from `source` (including itself).
vid_t reachable_count(const Graph& g, vid_t source);

struct DegreeStats {
  double avg = 0.0;
  vid_t max = 0;
  vid_t min = 0;
};
DegreeStats degree_stats(const Graph& g);

struct DiameterEstimate {
  vid_t lower_bound = 0;   ///< max eccentricity over sampled BFS sweeps
  double effective90 = 0;  ///< 90-percentile effective diameter (Table 2's d̄)
};

/// Estimate diameter by repeated BFS sweeps from `samples` pseudo-random
/// sources plus double-sweep refinement (exact on small graphs when
/// samples >= n). For directed graphs the sweep follows out-edges.
DiameterEstimate estimate_diameter(const Graph& g, int samples,
                                   std::uint64_t seed);

}  // namespace mfbc::graph
