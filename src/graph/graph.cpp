#include "graph/graph.hpp"

#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace mfbc::graph {

namespace {
/// Parallel edges keep the minimum weight (tropical elementwise combine).
using MinMonoid = algebra::TropicalMinMonoid;
}  // namespace

Graph Graph::from_edges(vid_t n, const std::vector<Edge>& edges, bool directed,
                        bool weighted) {
  MFBC_CHECK(n >= 0, "vertex count must be non-negative");
  sparse::Coo<Weight> coo(n, n);
  coo.reserve(static_cast<nnz_t>(edges.size()) * (directed ? 1 : 2));
  for (const Edge& e : edges) {
    MFBC_CHECK(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
               "edge endpoint out of range");
    const Weight w = weighted ? e.w : 1.0;
    MFBC_CHECK(w > 0, "edge weights must be strictly positive");
    if (e.u == e.v) continue;  // drop self-loops
    coo.push(e.u, e.v, w);
    if (!directed) coo.push(e.v, e.u, w);
  }
  auto adj = sparse::Csr<Weight>::from_coo<MinMonoid>(std::move(coo));
  return Graph(std::move(adj), directed, weighted);
}

Graph graph_from_csr(sparse::Csr<Weight> adj, bool directed, bool weighted) {
  MFBC_CHECK(adj.nrows() == adj.ncols(), "adjacency matrix must be square");
  return Graph(std::move(adj), directed, weighted);
}

}  // namespace mfbc::graph
