// Graph I/O: whitespace edge lists (the SNAP distribution format) and
// MatrixMarket coordinate files, so real datasets can replace the synthetic
// proxies when available.
//
// The loaders are hardened against malformed input: truncated files,
// negative / overflowing vertex ids, and non-numeric tokens throw
// mfbc::Error carrying the source name and 1-based line number (e.g.
// "graph.txt:17: non-numeric vertex id 'x'") instead of producing garbage
// graphs. tests/test_io_fuzz.cpp holds the corpora.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace mfbc::graph {

struct EdgeListOptions {
  bool directed = false;
  bool weighted = false;      ///< expect a third column with a weight
  bool one_indexed = false;   ///< vertex ids start at 1 (MatrixMarket style)
};

/// Parse "u v [w]" lines; '#' and '%' start comment lines. Vertex ids are
/// compacted to 0..n-1 preserving first-appearance order. `source` names the
/// stream in error messages (the file loader passes its path).
Graph read_edge_list(std::istream& in, const EdgeListOptions& opts,
                     const std::string& source = "<edge list>");
Graph read_edge_list_file(const std::string& path, const EdgeListOptions& opts);

/// Write "u v w" lines (one stored direction per undirected edge).
void write_edge_list(std::ostream& out, const Graph& g);

/// MatrixMarket coordinate format ("%%MatrixMarket matrix coordinate ...").
Graph read_matrix_market(std::istream& in,
                         const std::string& source = "<matrix market>");
void write_matrix_market(std::ostream& out, const Graph& g);

}  // namespace mfbc::graph
