// Graph representation (paper §2.1).
//
// A graph G = (V, E, w) is stored as its adjacency matrix A in CSR with
// A(i,j) = w(i,j) for (i,j) ∈ E; absent entries mean A(i,j) = ∞. Unweighted
// graphs store weight 1 on every edge. Undirected graphs store both (i,j)
// and (j,i).
#pragma once

#include <vector>

#include "algebra/tropical.hpp"
#include "sparse/csr.hpp"

namespace mfbc::graph {

using sparse::nnz_t;
using sparse::vid_t;
using Weight = algebra::Weight;

struct MutationBatch;  // graph/mutate.hpp

struct Edge {
  vid_t u = 0;
  vid_t v = 0;
  Weight w = 1.0;
};

class Graph {
 public:
  Graph() = default;

  /// Build from an edge list. Self-loops are dropped (they never lie on a
  /// simple shortest path and Brandes' recurrence ignores them); parallel
  /// edges keep the minimum weight. For undirected graphs each edge is
  /// inserted in both directions. All weights must be strictly positive —
  /// MFBF's frontier-termination argument needs w > 0 (a zero-weight cycle
  /// would admit equal-weight paths of unbounded edge count).
  static Graph from_edges(vid_t n, const std::vector<Edge>& edges,
                          bool directed, bool weighted);

  vid_t n() const { return adj_.nrows(); }

  /// Number of stored adjacency nonzeros (2m for undirected graphs).
  nnz_t nnz() const { return adj_.nnz(); }

  /// Number of edges in the usual graph sense.
  nnz_t m() const { return directed_ ? adj_.nnz() : adj_.nnz() / 2; }

  bool directed() const { return directed_; }
  bool weighted() const { return weighted_; }

  const sparse::Csr<Weight>& adj() const { return adj_; }

  /// Average degree m/n over stored directions (paper's k = m/n).
  double avg_degree() const {
    return n() == 0 ? 0.0 : static_cast<double>(m()) / static_cast<double>(n());
  }

  vid_t out_degree(vid_t v) const { return adj_.row_nnz(v); }

  /// True when the stored adjacency has entry (u, v); symmetric for
  /// undirected graphs. Endpoints must be in [0, n).
  bool has_edge(vid_t u, vid_t v) const;

  /// Versioned-mutation API (graph/mutate.hpp): a Graph is immutable, so
  /// each call returns a *new* snapshot with the edit applied. Errors
  /// (out-of-range endpoints, self-loops, duplicate adds, absent removals,
  /// non-positive weights) throw mfbc::Error with graph::io-style context.
  Graph add_edge(vid_t u, vid_t v, Weight w = 1.0) const;
  Graph remove_edge(vid_t u, vid_t v) const;
  /// Replay a whole MutationBatch in order (sequential semantics).
  Graph apply(const MutationBatch& batch) const;

 private:
  Graph(sparse::Csr<Weight> adj, bool directed, bool weighted)
      : adj_(std::move(adj)), directed_(directed), weighted_(weighted) {}

  sparse::Csr<Weight> adj_;
  bool directed_ = false;
  bool weighted_ = false;

  friend Graph graph_from_csr(sparse::Csr<Weight> adj, bool directed,
                              bool weighted);
};

/// Internal: wrap an adjacency CSR that is already well-formed (used by the
/// preprocessing passes).
Graph graph_from_csr(sparse::Csr<Weight> adj, bool directed, bool weighted);

}  // namespace mfbc::graph
