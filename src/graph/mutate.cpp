#include "graph/mutate.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "sparse/coo.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace mfbc::graph {

namespace {

using MinMonoid = algebra::TropicalMinMonoid;

/// "<label>:<index>: " prefix for batch-applied mutations, "" for the
/// single-edge entry points — the graph::io source:position convention.
std::string ctx(const std::string& label, std::ptrdiff_t index) {
  if (index < 0) return "";
  return label + ":" + std::to_string(index) + ": ";
}

/// Mutable adjacency: one ordered (neighbor → weight) map per vertex.
/// Rebuilding through Coo + from_coo afterwards reproduces the exact CSR a
/// from-scratch Graph::from_edges build would produce (sorted unique
/// columns, identical weight bit patterns), which is what keeps the fuzz
/// test's same-CSR-bits pin honest.
struct MutableAdj {
  vid_t n = 0;
  std::vector<std::map<vid_t, Weight>> rows;

  explicit MutableAdj(const Graph& g) : n(g.n()), rows(g.n()) {
    const auto& a = g.adj();
    for (vid_t r = 0; r < n; ++r) {
      auto cols = a.row_cols(r);
      auto vals = a.row_vals(r);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        rows[static_cast<std::size_t>(r)].emplace(cols[i], vals[i]);
      }
    }
  }

  bool has(vid_t u, vid_t v) const {
    return rows[static_cast<std::size_t>(u)].count(v) != 0;
  }

  Graph build(bool directed, bool weighted) const {
    nnz_t total = 0;
    for (const auto& r : rows) total += static_cast<nnz_t>(r.size());
    sparse::Coo<Weight> coo(n, n);
    coo.reserve(total);
    for (vid_t r = 0; r < n; ++r) {
      for (const auto& [c, w] : rows[static_cast<std::size_t>(r)]) {
        coo.push(r, c, w);
      }
    }
    return graph_from_csr(sparse::Csr<Weight>::from_coo<MinMonoid>(
                              std::move(coo)),
                          directed, weighted);
  }
};

void check_endpoints(const MutableAdj& adj, vid_t u, vid_t v,
                     const std::string& where) {
  MFBC_CHECK(u >= 0 && u < adj.n && v >= 0 && v < adj.n,
             where + "edge endpoint out of range [0, " +
                 std::to_string(adj.n) + "): (" + std::to_string(u) + ", " +
                 std::to_string(v) + ")");
  MFBC_CHECK(u != v, where + "self-loop (" + std::to_string(u) + ", " +
                         std::to_string(u) +
                         ") rejected: self-loops never lie on a simple "
                         "shortest path");
}

void apply_one(MutableAdj& adj, const Mutation& m, bool directed,
               bool weighted, const std::string& label,
               std::ptrdiff_t index) {
  const std::string where = ctx(label, index);
  check_endpoints(adj, m.u, m.v, where);
  auto& fwd = adj.rows[static_cast<std::size_t>(m.u)];
  auto& bwd = adj.rows[static_cast<std::size_t>(m.v)];
  if (m.kind == MutationKind::kAddEdge) {
    const Weight w = weighted ? m.w : 1.0;
    MFBC_CHECK(w > 0, where + "edge weights must be strictly positive, got " +
                          std::to_string(w));
    MFBC_CHECK(!adj.has(m.u, m.v),
               where + "edge (" + std::to_string(m.u) + ", " +
                   std::to_string(m.v) +
                   ") already exists (replace = remove + add)");
    fwd.emplace(m.v, w);
    if (!directed) bwd.emplace(m.u, w);
  } else {
    MFBC_CHECK(adj.has(m.u, m.v),
               where + "no such edge (" + std::to_string(m.u) + ", " +
                   std::to_string(m.v) + ")");
    fwd.erase(m.v);
    if (!directed) bwd.erase(m.u);
  }
}

}  // namespace

std::uint64_t structural_signature(const Graph& g) {
  const auto& a = g.adj();
  std::uint64_t h = support::fnv1a("mfbc.graph.v1", 13);
  const std::uint64_t n = static_cast<std::uint64_t>(g.n());
  const std::uint64_t flags = (g.directed() ? 1u : 0u) |
                              (g.weighted() ? 2u : 0u);
  h = support::fnv1a_value(n, h);
  h = support::fnv1a_value(flags, h);
  const auto rowptr = a.rowptr();
  const auto col = a.col();
  const auto val = a.val();
  h = support::fnv1a(rowptr.data(), rowptr.size_bytes(), h);
  h = support::fnv1a(col.data(), col.size_bytes(), h);
  h = support::fnv1a(val.data(), val.size_bytes(), h);
  return h;
}

bool has_edge(const Graph& g, vid_t u, vid_t v) {
  MFBC_CHECK(u >= 0 && u < g.n() && v >= 0 && v < g.n(),
             "has_edge endpoint out of range [0, " + std::to_string(g.n()) +
                 "): (" + std::to_string(u) + ", " + std::to_string(v) + ")");
  auto cols = g.adj().row_cols(u);
  return std::binary_search(cols.begin(), cols.end(), v);
}

Graph add_edge(const Graph& g, vid_t u, vid_t v, Weight w) {
  MutableAdj adj(g);
  apply_one(adj, Mutation::add(u, v, w), g.directed(), g.weighted(),
            "mutation", -1);
  return adj.build(g.directed(), g.weighted());
}

Graph remove_edge(const Graph& g, vid_t u, vid_t v) {
  MutableAdj adj(g);
  apply_one(adj, Mutation::remove(u, v), g.directed(), g.weighted(),
            "mutation", -1);
  return adj.build(g.directed(), g.weighted());
}

Graph apply(const Graph& g, const MutationBatch& batch) {
  MutableAdj adj(g);
  for (std::size_t i = 0; i < batch.mutations.size(); ++i) {
    apply_one(adj, batch.mutations[i], g.directed(), g.weighted(),
              batch.label, static_cast<std::ptrdiff_t>(i));
  }
  return adj.build(g.directed(), g.weighted());
}

bool Graph::has_edge(vid_t u, vid_t v) const {
  return graph::has_edge(*this, u, v);
}

Graph Graph::add_edge(vid_t u, vid_t v, Weight w) const {
  return graph::add_edge(*this, u, v, w);
}

Graph Graph::remove_edge(vid_t u, vid_t v) const {
  return graph::remove_edge(*this, u, v);
}

Graph Graph::apply(const MutationBatch& batch) const {
  return graph::apply(*this, batch);
}

MutationBatch random_mutation_batch(const Graph& g, int adds, int removes,
                                    Xoshiro256& rng) {
  MutationBatch out;
  const vid_t n = g.n();
  if (n < 2) return out;
  // Track the evolving edge set so the batch replays cleanly under apply()'s
  // sequential semantics (no duplicate adds, no double removals).
  MutableAdj adj(g);
  // Removals first, over a stable enumeration of the current edges.
  std::vector<std::pair<vid_t, vid_t>> edges;
  for (vid_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : adj.rows[static_cast<std::size_t>(u)]) {
      if (g.directed() || u < v) edges.emplace_back(u, v);
    }
  }
  for (int i = 0; i < removes && !edges.empty(); ++i) {
    const std::size_t at =
        static_cast<std::size_t>(rng.bounded(edges.size()));
    const auto [u, v] = edges[at];
    edges[at] = edges.back();
    edges.pop_back();
    out.mutations.push_back(Mutation::remove(u, v));
    adj.rows[static_cast<std::size_t>(u)].erase(v);
    if (!g.directed()) adj.rows[static_cast<std::size_t>(v)].erase(u);
  }
  for (int i = 0; i < adds; ++i) {
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const vid_t u = static_cast<vid_t>(rng.bounded(
          static_cast<std::uint64_t>(n)));
      const vid_t v = static_cast<vid_t>(rng.bounded(
          static_cast<std::uint64_t>(n)));
      if (u == v || adj.has(u, v)) continue;
      const Weight w = g.weighted() ? rng.weight(1, 100) : 1.0;
      out.mutations.push_back(Mutation::add(u, v, w));
      adj.rows[static_cast<std::size_t>(u)].emplace(v, w);
      if (!g.directed()) adj.rows[static_cast<std::size_t>(v)].emplace(u, w);
      placed = true;
    }
    // A (near-)complete graph may exhaust the attempts; the batch just
    // carries fewer adds, which every consumer tolerates.
  }
  return out;
}

}  // namespace mfbc::graph
