#include "graph/snap_proxy.hpp"

#include "graph/generators.hpp"
#include "graph/prep.hpp"
#include "support/error.hpp"

namespace mfbc::graph {

const std::vector<SnapSpec>& snap_specs() {
  // Table 2 of the paper. Average degrees: frd 27.4, ork 37.7, ljm 14.6,
  // cit 4.3. Social networks get a strong R-MAT skew (low diameter); the
  // patent graph gets a gentler skew so the proxy keeps a noticeably larger
  // diameter, as the original does (d = 22 vs 9–16).
  static const std::vector<SnapSpec> specs = {
      {SnapId::kFriendster, "frd", "Friendster", /*directed=*/false, 65.6e6,
       1.8e9, 32, 5.8, /*default_scale=*/17, /*rmat_a=*/0.55},
      {SnapId::kOrkut, "ork", "Orkut social network", /*directed=*/false,
       3.1e6, 117e6, 9, 4.8, /*default_scale=*/15, /*rmat_a=*/0.57},
      {SnapId::kLiveJournal, "ljm", "LiveJournal membership",
       /*directed=*/true, 4.8e6, 70e6, 16, 6.5, /*default_scale=*/15,
       /*rmat_a=*/0.57},
      {SnapId::kPatents, "cit", "Patent citation graph", /*directed=*/true,
       3.8e6, 16.5e6, 22, 9.4, /*default_scale=*/15, /*rmat_a=*/0.45},
  };
  return specs;
}

const SnapSpec& snap_spec(SnapId id) {
  for (const auto& s : snap_specs()) {
    if (s.id == id) return s;
  }
  throw Error("unknown SnapId");
}

Graph snap_proxy(SnapId id, int scale, std::uint64_t seed) {
  const SnapSpec& spec = snap_spec(id);
  RmatParams params;
  params.scale = scale > 0 ? scale : spec.default_scale;
  params.edge_factor = spec.m_real / spec.n_real;
  params.a = spec.rmat_a;
  const double rest = (1.0 - spec.rmat_a) / 3.0;
  params.b = params.c = rest;
  params.directed = spec.directed;
  Graph g = rmat(params, seed);
  g = remove_isolated(g);
  return random_relabel(g, seed ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace mfbc::graph
