// Versioned edge mutations (docs/serving.md).
//
// A Graph is immutable; a mutation produces a *new* Graph. MutationBatch is
// the unit of change the serving layer applies between published versions:
// an ordered list of edge insertions and deletions validated as a whole
// (errors carry the batch label and 0-based mutation index, the same
// source:position convention as graph/io.hpp). apply() is sequential — a
// later mutation sees the effect of every earlier one, so "remove then
// re-add with a new weight" behaves the way a changelog replay would.
//
// VersionedGraph wraps a Graph with a monotonically increasing version
// number and a structural signature (FNV-1a over the exact CSR bits), the
// token checkpoints, plan-cache keys, and serve-layer caches bind to. Two
// graphs built through different mutation histories that land on the same
// adjacency structure have the same signature — the signature names the
// *structure*, the version names the *publication*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace mfbc::graph {

enum class MutationKind { kAddEdge, kRemoveEdge };

struct Mutation {
  MutationKind kind = MutationKind::kAddEdge;
  vid_t u = 0;
  vid_t v = 0;
  Weight w = 1.0;  ///< ignored by removals and by unweighted graphs

  static Mutation add(vid_t u, vid_t v, Weight w = 1.0) {
    return {MutationKind::kAddEdge, u, v, w};
  }
  static Mutation remove(vid_t u, vid_t v) {
    return {MutationKind::kRemoveEdge, u, v, 1.0};
  }
};

struct MutationBatch {
  std::vector<Mutation> mutations;
  /// Names the batch in error messages ("serve batch 3:1: ..."), the way
  /// graph::io names the input stream. Defaults to "mutation".
  std::string label = "mutation";

  bool empty() const { return mutations.empty(); }
  std::size_t size() const { return mutations.size(); }
};

/// FNV-1a 64-bit over the graph's exact structure: n, directedness,
/// weightedness, and the raw CSR arrays (rowptr, column indices, weight bit
/// patterns). Bit-identical adjacency ⇔ equal signature.
std::uint64_t structural_signature(const Graph& g);

/// True when the stored adjacency has an entry (u, v). Undirected graphs
/// store both directions, so has_edge(u, v) == has_edge(v, u) for them.
/// Endpoints must be in [0, n).
bool has_edge(const Graph& g, vid_t u, vid_t v);

/// Apply one insertion: returns a new Graph with edge (u, v) present at
/// weight w (both directions for undirected graphs). Throws mfbc::Error —
/// with "<label>:<index>:" context when called through apply() — on
/// out-of-range endpoints, self-loops, non-positive weights, or an edge
/// that already exists (replace = remove + add, so the changelog stays
/// unambiguous). Unweighted graphs force w to 1.
Graph add_edge(const Graph& g, vid_t u, vid_t v, Weight w = 1.0);

/// Apply one deletion: returns a new Graph without edge (u, v). Throws
/// mfbc::Error on out-of-range endpoints or an absent edge.
Graph remove_edge(const Graph& g, vid_t u, vid_t v);

/// Replay a whole batch in order; each error message carries
/// "<batch.label>:<index>:" context. Returns the mutated graph.
Graph apply(const Graph& g, const MutationBatch& batch);

/// An immutable graph snapshot with a publication version and structural
/// signature. Versions increase by exactly 1 per apply(); the base snapshot
/// is version 0.
class VersionedGraph {
 public:
  VersionedGraph() = default;
  explicit VersionedGraph(Graph g)
      : g_(std::move(g)), sig_(structural_signature(g_)) {}

  /// The next snapshot: graph::apply(batch), version + 1, fresh signature.
  VersionedGraph apply(const MutationBatch& batch) const {
    VersionedGraph next(graph::apply(g_, batch));
    next.version_ = version_ + 1;
    return next;
  }

  const Graph& graph() const { return g_; }
  std::uint64_t version() const { return version_; }
  std::uint64_t signature() const { return sig_; }

 private:
  Graph g_;
  std::uint64_t version_ = 0;
  std::uint64_t sig_ = 0;
};

/// Deterministic random mutation batch for tests, the storm driver, and
/// bench_serve: `adds` insertions of edges not currently present and
/// `removes` deletions of existing edges (skipped when the graph has no
/// edges), drawn from `rng`. Weights are U{1..100} for weighted graphs.
MutationBatch random_mutation_batch(const Graph& g, int adds, int removes,
                                    Xoshiro256& rng);

}  // namespace mfbc::graph
