// Graph preprocessing passes.
//
// The paper's pipeline (§7.1) preprocesses all graphs to remove completely
// disconnected vertices, and the load-balance assumption of §5.2 requires
// randomizing the row/column order ("randomizing the row and column order
// implies that the number of nonzeros of each block is proportional to the
// block size").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace mfbc::graph {

/// Remove vertices with no in- or out-edges, compacting vertex ids.
/// Returns the cleaned graph; if old_to_new is non-null it receives the id
/// mapping (-1 for removed vertices).
Graph remove_isolated(const Graph& g, std::vector<vid_t>* old_to_new = nullptr);

/// Apply a uniformly random permutation to vertex ids (the §5.2
/// load-balancing preconditioner). Centrality scores are permuted
/// accordingly; `perm_out` (optional) receives new_id = perm[old_id].
Graph random_relabel(const Graph& g, std::uint64_t seed,
                     std::vector<vid_t>* perm_out = nullptr);

/// Relabel vertex ids by an explicit bijection, new_id = perm[old_id] — the
/// same rebuild as random_relabel with a caller-chosen order. Used by the
/// load-balanced partitioners (dist/partition.hpp) to place heavy vertices
/// into specific rank slots. Aborts if `perm` is not a permutation of 0..n-1.
Graph relabel(const Graph& g, std::span<const vid_t> perm);

/// Make a directed graph undirected by adding reverse edges (minimum weight
/// wins on conflicts). No-op for graphs that are already undirected.
Graph symmetrize(const Graph& g);

/// Restrict the graph to its largest weakly connected component, compacting
/// vertex ids (BC studies commonly run on the giant component; TEPS
/// accounting assumes connectivity). `old_to_new` (optional) receives the
/// id mapping (-1 for removed vertices).
Graph largest_component(const Graph& g,
                        std::vector<vid_t>* old_to_new = nullptr);

/// Induced subgraph on `vertices` (deduplicated), with ids compacted in the
/// order given. Edges with both endpoints in the set survive.
Graph induced_subgraph(const Graph& g, std::span<const vid_t> vertices,
                       std::vector<vid_t>* old_to_new = nullptr);

}  // namespace mfbc::graph
