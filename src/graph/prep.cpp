#include "graph/prep.hpp"

#include <numeric>

#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace mfbc::graph {

namespace {
using MinMonoid = algebra::TropicalMinMonoid;

Graph rebuild(const Graph& g, const std::vector<vid_t>& old_to_new,
              vid_t new_n) {
  sparse::Coo<Weight> coo(new_n, new_n);
  coo.reserve(g.nnz());
  const auto& adj = g.adj();
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    const vid_t nr = old_to_new[static_cast<std::size_t>(r)];
    if (nr < 0) continue;
    auto cols = adj.row_cols(r);
    auto vals = adj.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const vid_t nc = old_to_new[static_cast<std::size_t>(cols[i])];
      if (nc >= 0) coo.push(nr, nc, vals[i]);
    }
  }
  return graph_from_csr(
      sparse::Csr<Weight>::from_coo<MinMonoid>(std::move(coo)), g.directed(),
      g.weighted());
}
}  // namespace

Graph remove_isolated(const Graph& g, std::vector<vid_t>* old_to_new_out) {
  const auto& adj = g.adj();
  std::vector<char> live(static_cast<std::size_t>(g.n()), 0);
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    if (adj.row_nnz(r) > 0) live[static_cast<std::size_t>(r)] = 1;
  }
  for (vid_t c : adj.col()) live[static_cast<std::size_t>(c)] = 1;
  std::vector<vid_t> old_to_new(static_cast<std::size_t>(g.n()), -1);
  vid_t next = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    if (live[static_cast<std::size_t>(v)]) {
      old_to_new[static_cast<std::size_t>(v)] = next++;
    }
  }
  Graph out = rebuild(g, old_to_new, next);
  if (old_to_new_out != nullptr) *old_to_new_out = std::move(old_to_new);
  return out;
}

Graph random_relabel(const Graph& g, std::uint64_t seed,
                     std::vector<vid_t>* perm_out) {
  std::vector<vid_t> perm(static_cast<std::size_t>(g.n()));
  std::iota(perm.begin(), perm.end(), vid_t{0});
  Xoshiro256 rng(seed);
  // Fisher–Yates with the library's deterministic generator.
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(perm[i - 1], perm[j]);
  }
  Graph out = rebuild(g, perm, g.n());
  if (perm_out != nullptr) *perm_out = std::move(perm);
  return out;
}

Graph relabel(const Graph& g, std::span<const vid_t> perm) {
  MFBC_CHECK(perm.size() == static_cast<std::size_t>(g.n()),
             "relabel: permutation size does not match vertex count");
  std::vector<char> seen(perm.size(), 0);
  for (vid_t x : perm) {
    MFBC_CHECK(x >= 0 && x < g.n() && !seen[static_cast<std::size_t>(x)],
               "relabel: not a permutation of 0..n-1");
    seen[static_cast<std::size_t>(x)] = 1;
  }
  return rebuild(g, std::vector<vid_t>(perm.begin(), perm.end()), g.n());
}

Graph symmetrize(const Graph& g) {
  if (!g.directed()) return g;
  auto merged = sparse::ewise_union<MinMonoid>(g.adj(),
                                               sparse::transpose(g.adj()));
  return graph_from_csr(std::move(merged), /*directed=*/false, g.weighted());
}

Graph largest_component(const Graph& g, std::vector<vid_t>* old_to_new_out) {
  // Union-find over the undirected closure, then keep the biggest root.
  std::vector<vid_t> parent(static_cast<std::size_t>(g.n()));
  for (vid_t v = 0; v < g.n(); ++v) parent[static_cast<std::size_t>(v)] = v;
  auto find = [&](vid_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  const auto& adj = g.adj();
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    for (vid_t c : adj.row_cols(r)) {
      const vid_t a = find(r), b = find(c);
      if (a != b) parent[static_cast<std::size_t>(a)] = b;
    }
  }
  std::vector<vid_t> size(static_cast<std::size_t>(g.n()), 0);
  for (vid_t v = 0; v < g.n(); ++v) size[static_cast<std::size_t>(find(v))]++;
  vid_t best_root = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    if (size[static_cast<std::size_t>(v)] >
        size[static_cast<std::size_t>(best_root)]) {
      best_root = v;
    }
  }
  std::vector<vid_t> old_to_new(static_cast<std::size_t>(g.n()), -1);
  vid_t next = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    if (find(v) == best_root) old_to_new[static_cast<std::size_t>(v)] = next++;
  }
  Graph out = rebuild(g, old_to_new, next);
  if (old_to_new_out != nullptr) *old_to_new_out = std::move(old_to_new);
  return out;
}

Graph induced_subgraph(const Graph& g, std::span<const vid_t> vertices,
                       std::vector<vid_t>* old_to_new_out) {
  std::vector<vid_t> old_to_new(static_cast<std::size_t>(g.n()), -1);
  vid_t next = 0;
  for (vid_t v : vertices) {
    MFBC_CHECK(v >= 0 && v < g.n(), "subgraph vertex out of range");
    if (old_to_new[static_cast<std::size_t>(v)] == -1) {
      old_to_new[static_cast<std::size_t>(v)] = next++;
    }
  }
  Graph out = rebuild(g, old_to_new, next);
  if (old_to_new_out != nullptr) *old_to_new_out = std::move(old_to_new);
  return out;
}

}  // namespace mfbc::graph
