// Synthetic graph generators used by the evaluation (paper §7):
//   * Erdős–Rényi / uniform random graphs [22] for weak scaling (§7.3),
//   * R-MAT power-law graphs [14] for strong scaling (§7.2),
// each in unweighted and weighted (integer weights in [wmin, wmax]) form.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace mfbc::graph {

struct WeightSpec {
  bool weighted = false;
  std::uint64_t wmin = 1;
  std::uint64_t wmax = 100;  ///< paper's weighted R-MAT uses U{1..100}
};

/// Uniform random graph with exactly m distinct edges (G(n,m) model).
/// Matches the paper's "every edge exists with a uniform probability"
/// workloads, parameterized by edge count for exact weak-scaling control.
Graph erdos_renyi(vid_t n, nnz_t m, bool directed, WeightSpec ws,
                  std::uint64_t seed);

/// Uniform random graph from an edge-percentage f = 100·m/n² as used in the
/// edge-weak-scaling experiment (Fig. 2(a)).
Graph erdos_renyi_percent(vid_t n, double f_percent, bool directed,
                          WeightSpec ws, std::uint64_t seed);

struct RmatParams {
  int scale = 14;            ///< n = 2^scale before cleanup
  double edge_factor = 8.0;  ///< average degree E (m ≈ E·n)
  double a = 0.57, b = 0.19, c = 0.19;  ///< R-MAT quadrant probabilities
  bool directed = false;
  WeightSpec weights;
};

/// R-MAT recursive power-law generator [14]; duplicate edges are merged, so
/// the realized m is slightly below edge_factor·n (as in the reference
/// generator).
Graph rmat(const RmatParams& params, std::uint64_t seed);

}  // namespace mfbc::graph
