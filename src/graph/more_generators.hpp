// Additional workload families beyond the paper's R-MAT / Erdős–Rényi:
// small-world rings (Watts–Strogatz), preferential attachment
// (Barabási–Albert), and regular grids/tori. These give the test suite and
// the examples graph classes with controlled diameter and degree structure —
// e.g. a torus has large diameter and uniform degree (the opposite corner of
// the workload space from R-MAT), which stresses the frontier loops in ways
// power-law graphs do not.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/generators.hpp"

namespace mfbc::graph {

/// Watts–Strogatz small world: a ring of n vertices each connected to its k
/// nearest neighbors (k even), with every edge rewired to a random endpoint
/// with probability beta. beta=0 gives a high-diameter ring lattice; small
/// beta collapses the diameter while keeping local clustering.
Graph watts_strogatz(vid_t n, int k, double beta, WeightSpec ws,
                     std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches m
/// edges to existing vertices with probability proportional to their
/// degree. Produces power-law degree tails with guaranteed connectivity.
Graph barabasi_albert(vid_t n, int m, WeightSpec ws, std::uint64_t seed);

/// side×side 4-neighbor grid (optionally a torus with wraparound edges).
/// Weighted variants draw integer weights from ws.
Graph grid_2d(vid_t side, bool torus, WeightSpec ws, std::uint64_t seed);

}  // namespace mfbc::graph
