#include "graph/metrics.hpp"

#include <algorithm>
#include <queue>

#include "sparse/ops.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace mfbc::graph {

std::vector<vid_t> bfs_levels(const Graph& g, vid_t source) {
  MFBC_CHECK(source >= 0 && source < g.n(), "bfs source out of range");
  std::vector<vid_t> level(static_cast<std::size_t>(g.n()), -1);
  std::queue<vid_t> q;
  level[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const vid_t u = q.front();
    q.pop();
    const vid_t lu = level[static_cast<std::size_t>(u)];
    for (vid_t v : g.adj().row_cols(u)) {
      if (level[static_cast<std::size_t>(v)] < 0) {
        level[static_cast<std::size_t>(v)] = lu + 1;
        q.push(v);
      }
    }
  }
  return level;
}

vid_t weakly_connected_components(const Graph& g) {
  // Union-find over the undirected closure.
  std::vector<vid_t> parent(static_cast<std::size_t>(g.n()));
  for (vid_t v = 0; v < g.n(); ++v) parent[static_cast<std::size_t>(v)] = v;
  auto find = [&](vid_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  const auto& adj = g.adj();
  for (vid_t r = 0; r < adj.nrows(); ++r) {
    for (vid_t c : adj.row_cols(r)) {
      const vid_t a = find(r), b = find(c);
      if (a != b) parent[static_cast<std::size_t>(a)] = b;
    }
  }
  vid_t components = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    if (find(v) == v) ++components;
  }
  return components;
}

vid_t reachable_count(const Graph& g, vid_t source) {
  auto levels = bfs_levels(g, source);
  return static_cast<vid_t>(
      std::count_if(levels.begin(), levels.end(), [](vid_t l) { return l >= 0; }));
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  if (g.n() == 0) return s;
  s.min = g.n();
  nnz_t total = 0;
  for (vid_t v = 0; v < g.n(); ++v) {
    const vid_t d = g.out_degree(v);
    total += d;
    s.max = std::max(s.max, d);
    s.min = std::min(s.min, d);
  }
  s.avg = static_cast<double>(total) / static_cast<double>(g.n());
  return s;
}

DiameterEstimate estimate_diameter(const Graph& g, int samples,
                                   std::uint64_t seed) {
  DiameterEstimate est;
  if (g.n() == 0) return est;
  Xoshiro256 rng(seed);
  std::vector<vid_t> all_dists;
  vid_t best_ecc = 0;
  vid_t frontier_source = -1;
  const int rounds = std::min<int>(samples, static_cast<int>(g.n()));
  for (int i = 0; i < rounds; ++i) {
    const vid_t src =
        samples >= g.n()
            ? static_cast<vid_t>(i)
            : static_cast<vid_t>(rng.bounded(static_cast<std::uint64_t>(g.n())));
    auto levels = bfs_levels(g, src);
    for (std::size_t v = 0; v < levels.size(); ++v) {
      const vid_t l = levels[v];
      if (l > 0) all_dists.push_back(l);
      if (l > best_ecc) {
        best_ecc = l;
        // remember the farthest vertex for the double sweep
        frontier_source = static_cast<vid_t>(v);
      }
    }
  }
  // Double sweep: BFS again from the farthest vertex found.
  if (frontier_source >= 0) {
    auto levels = bfs_levels(g, frontier_source);
    for (vid_t l : levels) best_ecc = std::max(best_ecc, l);
  }
  est.lower_bound = best_ecc;
  if (!all_dists.empty()) {
    std::nth_element(all_dists.begin(),
                     all_dists.begin() +
                         static_cast<std::ptrdiff_t>(all_dists.size() * 9 / 10),
                     all_dists.end());
    est.effective90 = static_cast<double>(
        all_dists[all_dists.size() * 9 / 10]);
  }
  return est;
}

}  // namespace mfbc::graph
