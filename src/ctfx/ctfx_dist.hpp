// Distributed execution for the CTF facade (paper §6.1).
//
// In CTF, "an n×n CTF matrix is distributed across a World (an MPI
// communicator)". Here a World wraps the simulated machine: DMatrix<T>
// carries a dist::DistMatrix on a near-square default grid, expressions are
// the same index-label forms as the sequential facade, and contraction
// evaluation dispatches to the autotuned distributed SpGEMM — so the
// paper's `Z["ij"] = BF(A["ik"], Z["kj"])` line runs with §5.2 algorithm
// selection and §7.4 cost accounting underneath, unchanged at the surface.
#pragma once

#include <utility>

#include "algebra/tropical.hpp"
#include "ctfx/ctfx.hpp"
#include "dist/spgemm_dist.hpp"

namespace mfbc::ctfx {

/// The simulated communicator all DMatrix objects live on (CTF's World).
class World {
 public:
  explicit World(sim::Sim& sim) : sim_(&sim) {}

  sim::Sim& sim() const { return *sim_; }
  int nranks() const { return sim_->nranks(); }

  /// Near-square default grid for an r×c matrix region (CTF: "block
  /// dimensions owned by each processor as close to a square as possible").
  dist::Layout default_layout(sparse::vid_t nrows, sparse::vid_t ncols) const {
    int pr = 1;
    const int p = sim_->nranks();
    for (int d = 1; d * d <= p; ++d) {
      if (p % d == 0) pr = d;
    }
    return dist::Layout{0,        pr,
                        p / pr,   dist::Range{0, nrows},
                        dist::Range{0, ncols}, false};
  }

 private:
  sim::Sim* sim_;
};

template <typename T>
class DMatrix;

template <typename T>
struct DIndexed {
  const DMatrix<T>* matrix;
  detail::Labels labels;
};

template <typename T>
class DIndexedMut : public DIndexed<T> {
 public:
  DIndexedMut(DMatrix<T>* m, detail::Labels l)
      : DIndexed<T>{m, l}, mutable_(m) {}

  template <typename Expr>
  DIndexedMut& operator=(const Expr& expr) {
    mutable_->assign(expr.eval_dist(this->labels, mutable_->world()));
    return *this;
  }

 private:
  DMatrix<T>* mutable_;
};

/// A distributed CTF-style matrix handle.
template <typename T>
class DMatrix {
 public:
  /// Empty matrix on the world's default grid.
  DMatrix(World world, sparse::vid_t nrows, sparse::vid_t ncols)
      : world_(world),
        data_(nrows, ncols, world.default_layout(nrows, ncols)) {}

  /// Distribute sequential data (charges the input scatter, CTF's
  /// Tensor::write).
  template <algebra::Monoid M>
  static DMatrix write(World world, const Csr<T>& global) {
    DMatrix out(world, global.nrows(), global.ncols());
    out.data_ = dist::DistMatrix<T>::template scatter<M>(
        world.sim(), global, out.data_.layout());
    return out;
  }

  World world() const { return world_; }
  sparse::vid_t nrows() const { return data_.nrows(); }
  sparse::vid_t ncols() const { return data_.ncols(); }
  const dist::DistMatrix<T>& dist() const { return data_; }

  /// Collect to sequential storage (CTF's Tensor::read; charges a gather).
  Csr<T> read() const { return data_.gather(world_.sim()); }

  DIndexed<T> operator[](const char* labels) const {
    return {this, detail::parse_labels(labels)};
  }
  DIndexedMut<T> operator[](const char* labels) {
    return {this, detail::parse_labels(labels)};
  }

  void assign(dist::DistMatrix<T> data) { data_ = std::move(data); }

 private:
  World world_;
  dist::DistMatrix<T> data_;
};

namespace detail {

template <typename T>
struct KeepFirstLocal {
  using value_type = T;
  static value_type identity() { return value_type{}; }
  static value_type combine(const value_type& a, const value_type&) {
    return a;
  }
  static bool is_identity(const value_type&) { return false; }
};

/// Orient a distributed operand to (want_row, want_col) label order. A
/// transposition is a real data-reordering: performed via gather-free
/// blockwise transpose + redistribution, charged as an all-to-all (§1:
/// "aside from the need for transposition (data-reordering), sparse tensor
/// contractions are equivalent to sparse matrix multiplication").
template <typename T>
dist::DistMatrix<T> oriented_dist(const DIndexed<T>& x, char want_row,
                                  char want_col, World world) {
  if (x.labels.row == want_row && x.labels.col == want_col) {
    return x.matrix->dist();
  }
  MFBC_CHECK(x.labels.row == want_col && x.labels.col == want_row,
             "operand labels do not match the expression");
  // Transpose block-locally into a COO of the transposed global matrix,
  // then place on the default layout for the transposed shape.
  const auto& src = x.matrix->dist();
  dist::Layout target =
      world.default_layout(src.ncols(), src.nrows());
  dist::DistMatrix<T> out(src.ncols(), src.nrows(), target);
  sparse::Coo<T> all(src.ncols(), src.nrows());
  const dist::Layout& sl = src.layout();
  double moved_words = 0;
  for (int i = 0; i < sl.pr; ++i) {
    for (int j = 0; j < sl.pc; ++j) {
      const dist::Range rr = sl.block_rows(i, j);
      const auto& blk = src.block(i, j);
      for (sparse::vid_t r = 0; r < blk.nrows(); ++r) {
        auto cols = blk.row_cols(r);
        auto vals = blk.row_vals(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          all.push(cols[k], rr.lo + r, vals[k]);
          moved_words += sim::sparse_entry_words<T>();
        }
      }
    }
  }
  world.sim().charge_alltoall(
      target.ranks(),
      moved_words / std::max(1, target.nranks()));
  auto whole = Csr<T>::template from_coo<detail::KeepFirstLocal<T>>(
      std::move(all));
  // Rebuild blocks without a second charge (the all-to-all above covered
  // the reordering).
  for (int i = 0; i < target.pr; ++i) {
    for (int j = 0; j < target.pc; ++j) {
      const dist::Range rr = target.block_rows(i, j);
      const dist::Range cr = target.block_cols(i, j);
      auto rows = sparse::slice_rows(whole, rr.lo, rr.hi);
      out.block(i, j) = sparse::filter(
          rows, [&](sparse::vid_t, sparse::vid_t c, const T&) {
            return cr.contains(c);
          });
    }
  }
  return out;
}

/// Deferred distributed contraction with autotuned plan selection.
template <algebra::Monoid M, typename F, typename TA, typename TB>
struct DContractionExpr {
  DIndexed<TA> a;
  DIndexed<TB> b;
  F f;

  dist::DistMatrix<typename M::value_type> eval_dist(Labels out,
                                                     World world) const {
    char k = 0;
    for (char ca : {a.labels.row, a.labels.col}) {
      for (char cb : {b.labels.row, b.labels.col}) {
        if (ca == cb) k = ca;
      }
    }
    MFBC_CHECK(k != 0, "operands share no index to contract over");
    MFBC_CHECK(k != out.row && k != out.col,
               "contracted index may not appear in the output");
    const char m = a.labels.row == k ? a.labels.col : a.labels.row;
    const char n = b.labels.row == k ? b.labels.col : b.labels.row;
    MFBC_CHECK((out == Labels{m, n}) || (out == Labels{n, m}),
               "output labels must be the operands' two free indices");
    auto ad = oriented_dist(a, m, k, world);
    auto bd = oriented_dist(b, k, n, world);
    dist::Layout out_layout = world.default_layout(ad.nrows(), bd.ncols());
    auto c = dist::spgemm_auto<M>(world.sim(), ad, bd, f, out_layout);
    if (out == Labels{n, m}) {
      // Transposed output: reorder through one more all-to-all.
      DMatrix<typename M::value_type> tmp(world, c.nrows(), c.ncols());
      tmp.assign(std::move(c));
      DIndexed<typename M::value_type> view{&tmp, Labels{m, n}};
      return oriented_dist(view, n, m, world);
    }
    return c;
  }
};

/// Deferred distributed elementwise combine (layout-aligned; the second
/// operand is redistributed to the first's layout if needed).
template <algebra::Monoid M>
struct DEwiseExpr {
  DIndexed<typename M::value_type> a;
  DIndexed<typename M::value_type> b;

  dist::DistMatrix<typename M::value_type> eval_dist(Labels out,
                                                     World world) const {
    auto ad = oriented_dist(a, out.row, out.col, world);
    auto bd = oriented_dist(b, out.row, out.col, world);
    if (!(bd.layout() == ad.layout())) {
      bd = dist::redistribute<M>(world.sim(), bd, ad.layout());
    }
    return dist::ewise_union<M>(world.sim(), ad, bd);
  }
};

}  // namespace detail

/// Distributed contraction kernel: same construction syntax as the
/// sequential Kernel, applied to DMatrix operands.
template <algebra::Monoid M, typename F>
class DKernel {
 public:
  explicit DKernel(F f = F{}) : f_(std::move(f)) {}

  template <typename TA, typename TB>
  auto operator()(DIndexed<TA> a, DIndexed<TB> b) const {
    return detail::DContractionExpr<M, F, TA, TB>{a, b, f_};
  }

 private:
  F f_;
};

template <algebra::Monoid M>
auto ewise(DIndexed<typename M::value_type> a,
           DIndexed<typename M::value_type> b) {
  return detail::DEwiseExpr<M>{a, b};
}

namespace detail {

/// Deferred distributed elementwise map (blockwise local; transposes charge
/// a reordering all-to-all through oriented_dist).
template <typename R, typename TA, typename Fn>
struct DMapExpr {
  DIndexed<TA> a;
  Fn fn;

  dist::DistMatrix<R> eval_dist(Labels out, World world) const {
    auto ad = oriented_dist(a, out.row, out.col, world);
    dist::DistMatrix<R> outm(ad.nrows(), ad.ncols(), ad.layout());
    for (int i = 0; i < ad.layout().pr; ++i) {
      for (int j = 0; j < ad.layout().pc; ++j) {
        outm.block(i, j) = sparse::map_values<R>(
            ad.block(i, j),
            [&](sparse::vid_t, sparse::vid_t, const TA& v) { return fn(v); });
        world.sim().charge_compute(ad.layout().rank_at(i, j),
                                   static_cast<double>(ad.block(i, j).nnz()));
      }
    }
    return outm;
  }
};

}  // namespace detail

/// Distributed elementwise unary function (the §6.1 Function, distributed).
template <typename R, typename TA, typename Fn>
class DFunction {
 public:
  explicit DFunction(Fn fn) : fn_(std::move(fn)) {}

  auto operator()(DIndexed<TA> a) const {
    return detail::DMapExpr<R, TA, Fn>{a, fn_};
  }

 private:
  Fn fn_;
};

template <typename R, typename TA, typename Fn>
DFunction<R, TA, Fn> make_dfunction(Fn fn) {
  return DFunction<R, TA, Fn>(std::move(fn));
}

}  // namespace mfbc::ctfx
