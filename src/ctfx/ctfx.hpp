// The CTF programming interface (paper §6.1), as a typed facade over the
// sequential sparse kernels.
//
// The paper expresses MFBC's operations in CTF's index-label notation:
//
//     Kernel<W,M,M,u,f> BF;
//     Z["ij"] = BF(A["ik"], Z["kj"]);          // Z = A •⟨⊕,f⟩ Z
//
//     Function<int,float> inv([](int x){ return 1.f/x; });
//     B["ij"] = inv(A["ij"]);                  // elementwise map
//
// This header provides that surface: Matrix<T> wraps a Csr, operator[]
// attaches two index labels, Kernel<⊕,f> builds a contraction expression
// whose contracted index is inferred from the labels (the label occurring
// in both operands), and assignment evaluates. Transposed operand labels
// ("ki" instead of "ik") and transposed outputs are handled by inserting
// explicit transpositions, matching the paper's observation that "aside
// from the need for transposition (data-reordering), sparse tensor
// contractions are equivalent to sparse matrix multiplication" (§1).
//
// Execution is sequential; the facade exists to demonstrate (and test) the
// paper's "from algebra to code" mapping. The distributed path uses the
// typed API in src/dist directly.
#pragma once

#include <string>
#include <utility>

#include "algebra/concepts.hpp"
#include "sparse/csr.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm.hpp"
#include "support/error.hpp"

namespace mfbc::ctfx {

using sparse::Csr;
using sparse::vid_t;

namespace detail {

struct Labels {
  char row = 'i';
  char col = 'j';

  friend bool operator==(const Labels&, const Labels&) = default;
};

inline Labels parse_labels(const char* s) {
  MFBC_CHECK(s != nullptr && s[0] != '\0' && s[1] != '\0' && s[2] == '\0',
             "matrix index labels must be exactly two characters, e.g. \"ij\"");
  MFBC_CHECK(s[0] != s[1], "repeated index labels (traces) are not supported");
  return Labels{s[0], s[1]};
}

}  // namespace detail

template <typename T>
class Matrix;

/// A matrix with index labels attached: the building block of expressions.
template <typename T>
struct Indexed {
  const Matrix<T>* matrix;
  detail::Labels labels;
};

/// Mutable flavor returned by Matrix::operator[]; assignment to it runs an
/// expression (see Kernel/Function below). Publicly derives from Indexed so
/// template argument deduction lets a mutable handle appear as an operand.
template <typename T>
class IndexedMut : public Indexed<T> {
 public:
  IndexedMut(Matrix<T>* m, detail::Labels l)
      : Indexed<T>{m, l}, mutable_(m) {}

  /// Evaluate any expression object exposing eval(out_labels) -> Csr<T>.
  template <typename Expr>
  IndexedMut& operator=(const Expr& expr) {
    mutable_->assign(expr.eval(this->labels));
    return *this;
  }

 private:
  Matrix<T>* mutable_;
};

/// A CTF-style matrix handle (dense shape, sparse storage).
template <typename T>
class Matrix {
 public:
  Matrix(vid_t nrows, vid_t ncols) : data_(nrows, ncols) {}
  explicit Matrix(Csr<T> data) : data_(std::move(data)) {}

  vid_t nrows() const { return data_.nrows(); }
  vid_t ncols() const { return data_.ncols(); }
  const Csr<T>& csr() const { return data_; }

  Indexed<T> operator[](const char* labels) const {
    return {this, detail::parse_labels(labels)};
  }
  IndexedMut<T> operator[](const char* labels) {
    return {this, detail::parse_labels(labels)};
  }

  void assign(Csr<T> data) { data_ = std::move(data); }

 private:
  Csr<T> data_;
};

namespace detail {

/// Orient an operand so its labels match (want_row, want_col), transposing
/// if they arrive swapped.
template <typename T>
Csr<T> oriented(const Indexed<T>& x, char want_row, char want_col) {
  if (x.labels.row == want_row && x.labels.col == want_col) {
    return x.matrix->csr();
  }
  MFBC_CHECK(x.labels.row == want_col && x.labels.col == want_row,
             "operand labels do not match the expression");
  return sparse::transpose(x.matrix->csr());
}

/// Deferred contraction C(i,j) = ⊕_k f(A(i,k), B(k,j)) with label inference.
template <algebra::Monoid M, typename F, typename TA, typename TB>
struct ContractionExpr {
  Indexed<TA> a;
  Indexed<TB> b;
  F f;

  Csr<typename M::value_type> eval(Labels out) const {
    // The contracted label is the one the operands share; it must not
    // appear in the output.
    char k = 0;
    for (char ca : {a.labels.row, a.labels.col}) {
      for (char cb : {b.labels.row, b.labels.col}) {
        if (ca == cb) k = ca;
      }
    }
    MFBC_CHECK(k != 0, "operands share no index to contract over");
    MFBC_CHECK(k != out.row && k != out.col,
               "contracted index may not appear in the output");
    const char m = a.labels.row == k ? a.labels.col : a.labels.row;
    const char n = b.labels.row == k ? b.labels.col : b.labels.row;
    MFBC_CHECK((out == Labels{m, n}) || (out == Labels{n, m}),
               "output labels must be the operands' two free indices");
    Csr<TA> ac = oriented(a, m, k);
    Csr<TB> bc = oriented(b, k, n);
    auto c = sparse::spgemm<M>(ac, bc, f);
    if (out == Labels{n, m}) return sparse::transpose(c);
    return c;
  }
};

/// Deferred unary map B(i,j) = fn(A(i,j)) (CTF's Function on one operand).
template <typename R, typename TA, typename Fn>
struct MapExpr {
  Indexed<TA> a;
  Fn fn;

  Csr<R> eval(Labels out) const {
    Csr<TA> ac = oriented(a, out.row, out.col);
    return sparse::map_values<R>(
        ac, [&](vid_t, vid_t, const TA& v) { return fn(v); });
  }
};

/// Deferred elementwise combine C(i,j) = A(i,j) ⊕ B(i,j) over the union of
/// patterns (CTF's summation into a monoid).
template <algebra::Monoid M>
struct EwiseExpr {
  Indexed<typename M::value_type> a;
  Indexed<typename M::value_type> b;

  Csr<typename M::value_type> eval(Labels out) const {
    auto ac = oriented(a, out.row, out.col);
    auto bc = oriented(b, out.row, out.col);
    return sparse::ewise_union<M>(ac, bc);
  }
};

}  // namespace detail

/// Generalized contraction kernel •⟨⊕,f⟩ (paper §3 / §6.1's Kernel).
/// M is the output monoid, F the bridge function f : TA × TB → M::value_type.
template <algebra::Monoid M, typename F>
class Kernel {
 public:
  explicit Kernel(F f = F{}) : f_(std::move(f)) {}

  template <typename TA, typename TB>
  auto operator()(Indexed<TA> a, Indexed<TB> b) const {
    return detail::ContractionExpr<M, F, TA, TB>{a, b, f_};
  }

 private:
  F f_;
};

/// Elementwise unary function (CTF's Function<R,TA>).
template <typename R, typename TA, typename Fn>
class Function {
 public:
  explicit Function(Fn fn) : fn_(std::move(fn)) {}

  auto operator()(Indexed<TA> a) const {
    return detail::MapExpr<R, TA, Fn>{a, fn_};
  }

 private:
  Fn fn_;
};

template <typename R, typename TA, typename Fn>
Function<R, TA, Fn> make_function(Fn fn) {
  return Function<R, TA, Fn>(std::move(fn));
}

/// Elementwise monoid combine of two equally-typed matrices.
template <algebra::Monoid M>
auto ewise(Indexed<typename M::value_type> a,
           Indexed<typename M::value_type> b) {
  return detail::EwiseExpr<M>{a, b};
}

/// In-place value transform (CTF's Transform): mutates stored values.
template <typename T, typename Fn>
void transform(Matrix<T>& m, Fn fn) {
  Csr<T> updated = sparse::map_values<T>(
      m.csr(), [&](vid_t r, vid_t c, const T& v) { return fn(r, c, v); });
  m.assign(std::move(updated));
}

}  // namespace mfbc::ctfx
