// From algebra to code (paper §6.1): write graph algorithms in the CTF
// index-label notation the paper uses, on top of this library's ctfx facade.
//
// Demonstrates the paper's two signature snippets —
//     Function:  B["ij"] = inv(A["ij"])
//     Kernel:    Z["ij"] = BF(A["ik"], Z["kj"])
// — then runs a complete Bellman-Ford-with-multiplicities to a fixed point
// in five lines of expression code and checks it against the library's MFBF.
//
//   $ ./example_algebraic_kernels
#include <cstdio>

#include "algebra/multpath.hpp"
#include "ctfx/ctfx.hpp"
#include "graph/generators.hpp"
#include "mfbc/mfbc_seq.hpp"

int main() {
  using namespace mfbc;
  using algebra::Multpath;
  using algebra::MultpathMonoid;
  using ctfx::Kernel;
  using ctfx::Matrix;

  graph::WeightSpec ws{true, 1, 9};
  graph::Graph g = graph::erdos_renyi(512, 2048, true, ws, 17);
  std::printf("graph: n=%lld m=%lld directed weighted\n\n",
              static_cast<long long>(g.n()), static_cast<long long>(g.m()));

  // --- Paper snippet 1: elementwise Function --------------------------
  Matrix<double> a(g.adj());
  Matrix<double> inv_a(g.n(), g.n());
  auto inv = ctfx::make_function<double, double>([](double x) { return 1.0 / x; });
  inv_a["ij"] = inv(a["ij"]);
  std::printf("Function demo: inverted %lld edge weights elementwise\n",
              static_cast<long long>(inv_a.csr().nnz()));

  // --- Paper snippet 2: the Bellman-Ford Kernel -----------------------
  // Column-vector formulation: Z(v, s) holds the multpath from source s to
  // vertex v; one expression per relaxation, adjacency first (so the bridge
  // flips the action's argument order, as CTF's Kernel<W,M,M,u,f> does).
  struct BfBridge {
    Multpath operator()(double w, const Multpath& z) const {
      return Multpath{z.w + w, z.m};
    }
  };
  const graph::vid_t source = 0;
  sparse::Coo<Multpath> init_coo(g.n(), 1);
  init_coo.push(source, 0, Multpath{0.0, 1.0});
  auto init_csr =
      sparse::Csr<Multpath>::from_coo<MultpathMonoid>(std::move(init_coo));
  Matrix<Multpath> z0(init_csr);  // constant: paths of zero edges
  Matrix<Multpath> z(init_csr);   // h_j: shortest paths using <= j edges

  // Functional Bellman-Ford: h_{j+1} = h_0 ⊕ (Aᵀ •⟨⊕,f⟩ h_j). Note the
  // *replacement*, not accumulation — naively folding each relaxation into
  // the previous state (z ⊕= A·z) would re-add the multiplicities of paths
  // already counted; avoiding exactly that re-counting is what MFBF's
  // changed-entries-only frontier achieves while also skipping settled work.
  // The transposed label A["ki"] extends paths along in-edges of i:
  // Z(i,s) = ⊕_k f(A(k,i), Z(k,s)).
  Kernel<MultpathMonoid, BfBridge> bf;
  int iterations = 0;
  while (true) {
    Matrix<Multpath> next(g.n(), 1);
    next["ij"] = bf(a["ki"], z["kj"]);
    next["ij"] = ctfx::ewise<MultpathMonoid>(next["ij"], z0["ij"]);
    ++iterations;
    if (next.csr() == z.csr()) break;  // fixed point after d+1 products
    z.assign(next.csr());
  }
  std::printf("Kernel demo: Bellman-Ford fixed point after %d relaxations\n",
              iterations);

  // --- Check against the library's MFBF -------------------------------
  const graph::vid_t srcs[] = {source};
  core::PathMatrix t = core::mfbf(g, srcs);
  double max_err = 0;
  long long mismatches = 0;
  for (graph::vid_t v = 0; v < g.n(); ++v) {
    Multpath got{algebra::kInfWeight, 0.0};
    auto cols = z.csr().row_cols(v);
    auto vals = z.csr().row_vals(v);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == 0) got = vals[i];
    }
    if (v == source) continue;
    const double want_w = t.d(0, v);
    const double want_m = t.m(0, v);
    if (want_w == algebra::kInfWeight) {
      if (got.w != algebra::kInfWeight) ++mismatches;
      continue;
    }
    max_err = std::max(max_err, std::abs(got.w - want_w));
    if (got.m != want_m) ++mismatches;
  }
  std::printf("check vs MFBF: max distance error %.1e, %lld multiplicity "
              "mismatches\n",
              max_err, mismatches);
  return (max_err == 0 && mismatches == 0) ? 0 : 1;
}
