// Social-network influencer ranking — the workload class the paper's
// introduction motivates (betweenness in social-network analysis).
//
// Builds an R-MAT power-law "social graph", ranks vertices by *approximate*
// betweenness from a batch of pivot sources (the standard practice for
// large graphs, and exactly what a single MFBC batch computes), and shows
// how the approximate ranking converges to the exact one as the number of
// pivots grows.
//
//   $ ./example_social_ranking [scale] [degree]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baseline/brandes.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/prep.hpp"
#include "mfbc/mfbc_seq.hpp"
#include "mfbc/ranking.hpp"

int main(int argc, char** argv) {
  using namespace mfbc;
  graph::RmatParams params;
  params.scale = argc > 1 ? std::atoi(argv[1]) : 11;
  params.edge_factor = argc > 2 ? std::atof(argv[2]) : 12;
  graph::Graph g = graph::random_relabel(
      graph::remove_isolated(graph::rmat(params, 2024)), 5);
  auto deg = graph::degree_stats(g);
  std::printf("social graph: n=%lld m=%lld avg_deg=%.1f max_deg=%lld\n",
              static_cast<long long>(g.n()), static_cast<long long>(g.m()),
              deg.avg, static_cast<long long>(deg.max));

  // Exact centrality (all n sources) as the reference ranking.
  std::printf("computing exact BC (all %lld sources)...\n",
              static_cast<long long>(g.n()));
  auto exact = core::mfbc(g, {.batch_size = 256});

  // Approximate: grow the pivot set and watch the top-20 stabilize.
  std::puts("\npivots   top-20 overlap with exact ranking");
  for (graph::vid_t pivots : {32, 64, 128, 256, 512}) {
    if (pivots > g.n()) break;
    core::MfbcOptions opts;
    opts.batch_size = 128;
    for (graph::vid_t s = 0; s < pivots; ++s) opts.sources.push_back(s);
    auto approx = core::mfbc(g, opts);
    std::printf("%6lld   %.0f%%\n", static_cast<long long>(pivots),
                100.0 * core::top_k_overlap(approx, exact, 20));
  }

  // Print the final leaderboard with degrees for context: betweenness and
  // degree correlate on power-law graphs but do not coincide.
  const auto leaders = core::top_k(exact, 10);
  std::puts("\nrank  vertex   betweenness   degree");
  for (std::size_t r = 0; r < leaders.size(); ++r) {
    const std::size_t v = leaders[r].vertex;
    std::printf("%4zu  v%-6zu  %12.1f  %6lld\n", r + 1, v, leaders[r].score,
                static_cast<long long>(
                    g.out_degree(static_cast<graph::vid_t>(v))));
  }
  return 0;
}
