// Weighted-graph betweenness on a road-network-style grid — the capability
// that sets MFBC apart from prior algebraic BC codes, which "have largely
// been limited to unweighted graphs" (§2.4). Transportation analysis is one
// of the paper's motivating BC applications.
//
// Builds a king's-move grid with integer travel times, finds the
// highest-betweenness road junctions (the congestion-critical ones), and
// contrasts the weighted ranking with the hop-count (unweighted) ranking to
// show why edge weights matter.
//
//   $ ./example_road_network [side]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/graph.hpp"
#include "mfbc/mfbc_seq.hpp"
#include "support/rng.hpp"

namespace {

using mfbc::graph::Edge;
using mfbc::graph::Graph;
using mfbc::graph::vid_t;

/// side×side grid; horizontal/vertical roads with travel times 1..9, and a
/// fast "highway" along the middle row (weight 1) that weighted BC should
/// light up.
Graph road_grid(vid_t side, bool weighted) {
  mfbc::Xoshiro256 rng(7);
  std::vector<Edge> edges;
  auto id = [side](vid_t r, vid_t c) { return r * side + c; };
  const vid_t mid = side / 2;
  for (vid_t r = 0; r < side; ++r) {
    for (vid_t c = 0; c < side; ++c) {
      if (c + 1 < side) {
        const double w = (r == mid) ? 1.0 : rng.weight(3, 9);
        edges.push_back({id(r, c), id(r, c + 1), w});
      }
      if (r + 1 < side) {
        edges.push_back({id(r, c), id(r + 1, c), rng.weight(3, 9)});
      }
    }
  }
  return Graph::from_edges(side * side, edges, /*directed=*/false, weighted);
}

std::vector<std::size_t> top_vertices(const std::vector<double>& bc,
                                      std::size_t k) {
  std::vector<std::size_t> idx(bc.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(),
                    [&](std::size_t a, std::size_t b) { return bc[a] > bc[b]; });
  idx.resize(k);
  return idx;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfbc;
  const vid_t side = argc > 1 ? std::atol(argv[1]) : 24;
  Graph weighted = road_grid(side, true);
  Graph hops = road_grid(side, false);
  std::printf("road grid: %lldx%lld junctions, %lld road segments, "
              "fast highway on row %lld\n",
              static_cast<long long>(side), static_cast<long long>(side),
              static_cast<long long>(weighted.m()),
              static_cast<long long>(side / 2));

  core::MfbcStats wstats, ustats;
  auto bc_w = core::mfbc(weighted, {.batch_size = 128}, &wstats);
  auto bc_u = core::mfbc(hops, {.batch_size = 128}, &ustats);
  std::printf("weighted MFBC: %d forward relaxations over %d batches "
              "(Bellman-Ford revisits)\n",
              wstats.forward.iterations(), wstats.batches);
  std::printf("unweighted MFBC: %d forward relaxations (pure BFS depth)\n\n",
              ustats.forward.iterations());

  const auto top_w = top_vertices(bc_w, 10);
  const auto top_u = top_vertices(bc_u, 10);
  std::puts("rank  weighted (travel time)      hop-count (topology only)");
  for (std::size_t r = 0; r < 10; ++r) {
    const auto wv = static_cast<vid_t>(top_w[r]);
    const auto uv = static_cast<vid_t>(top_u[r]);
    std::printf("%4zu  junction (%2lld,%2lld) %9.0f   junction (%2lld,%2lld) %9.0f\n",
                r + 1, static_cast<long long>(wv / side),
                static_cast<long long>(wv % side), bc_w[top_w[r]],
                static_cast<long long>(uv / side),
                static_cast<long long>(uv % side), bc_u[top_u[r]]);
  }

  // The highway row should dominate the weighted ranking.
  int highway_hits = 0;
  for (std::size_t r = 0; r < 10; ++r) {
    if (static_cast<vid_t>(top_w[r]) / side == side / 2) ++highway_hits;
  }
  std::printf("\nhighway-row junctions in the weighted top-10: %d "
              "(hop-count ranking ignores the highway entirely)\n",
              highway_hits);
  return highway_hits >= 5 ? 0 : 1;
}
