// Communication planner — using the library's §5.2 cost models and §6.2
// autotuner as a standalone tool: given a multiplication's shape/sparsity
// and a machine, print the predicted best data decompositions across
// processor counts, and validate one of them against a real simulated run.
//
// This is the "design methodology is readily extensible" angle of the paper:
// the SpGEMM planning layer is useful beyond betweenness centrality (e.g.
// for multigrid restriction products, §5's motivating aside).
//
//   $ ./example_comm_planner [nnzA] [nnzB] [n]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "algebra/tropical.hpp"
#include "benchsupport/table.hpp"
#include "dist/spgemm_dist.hpp"
#include "graph/generators.hpp"
#include "support/strutil.hpp"

int main(int argc, char** argv) {
  using namespace mfbc;
  using algebra::SumMonoid;
  using dist::Layout;
  using dist::Range;

  const double nnz_a = argc > 1 ? std::atof(argv[1]) : 1e5;
  const double nnz_b = argc > 2 ? std::atof(argv[2]) : 4e6;
  const sparse::vid_t n = argc > 3 ? std::atol(argv[3]) : 1 << 14;

  const sim::MachineModel mm = sim::MachineModel::blue_waters();
  std::printf("machine: alpha=%.2g s, beta=%.2g s/word, %.2g s/op\n\n",
              mm.alpha, mm.beta, mm.seconds_per_op);

  // 1. Plan table across processor counts for a frontier-times-adjacency
  //    shaped multiply (rectangular, imbalanced operands).
  bench::Table tab({"p", "best plan", "model latency", "model bandwidth",
                    "model compute", "per-rank memory"});
  for (int p : {4, 16, 64, 256, 1024, 4096}) {
    auto stats = dist::MultiplyStats::estimated(512, n, n, nnz_a, nnz_b,
                                                /*words_a=*/3, /*words_b=*/2,
                                                /*words_c=*/3);
    dist::TuneOptions opts;
    const dist::Plan plan = dist::autotune(p, stats, mm, opts);
    const auto cost = dist::model_cost(plan, stats, mm);
    tab.add_row({std::to_string(p), plan.to_string(),
                 compact(cost.latency, 3) + " s",
                 compact(cost.bandwidth, 3) + " s",
                 compact(cost.compute, 3) + " s",
                 human_bytes(dist::model_memory_words(plan, stats) * 8)});
  }
  std::fputs(tab.render("Autotuned plans for a 512-row frontier times a "
                        "sparse adjacency")
                 .c_str(),
             stdout);

  // 2. Validate the p=16 prediction with an actual simulated execution.
  std::puts("\nValidating the p=16 plan against a simulated execution...");
  graph::Graph g = graph::erdos_renyi(
      1 << 11, static_cast<graph::nnz_t>(1 << 14), false, {}, 3);
  sim::Sim sim(16, mm);
  Layout lf{0, 1, 16, Range{0, 128}, Range{0, g.n()}, false};
  Layout la{0, 4, 4, Range{0, g.n()}, Range{0, g.n()}, false};
  auto fr = sparse::slice_rows(g.adj(), 0, 128);
  auto df = dist::DistMatrix<double>::scatter<SumMonoid>(sim, fr, lf);
  auto da = dist::DistMatrix<double>::scatter<SumMonoid>(sim, g.adj(), la);
  auto stats = dist::MultiplyStats::estimated(
      128, g.n(), g.n(), static_cast<double>(fr.nnz()),
      static_cast<double>(g.adj().nnz()), 2, 2, 2);
  const dist::Plan plan = dist::autotune(16, stats, mm);
  sim.ledger().reset();
  dist::spgemm<SumMonoid>(sim, plan, df, da,
                          [](double a, double b) { return a * b; }, lf);
  const sim::Cost c = sim.ledger().critical();
  const auto predicted = dist::model_cost(plan, stats, mm);
  std::printf("  plan %s: predicted %.3g s vs simulated %.3g s "
              "(%.0f msgs, %s moved)\n",
              plan.to_string().c_str(), predicted.total(), c.total_seconds(),
              c.msgs, human_bytes(c.words * 8).c_str());
  std::puts("  (the model guides mapping decisions; agreement within a small "
            "factor is what CTF's tuner needs)");
  return 0;
}
