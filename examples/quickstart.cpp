// Quickstart: compute exact betweenness centrality of a small social graph
// with sequential MFBC, check it against serial Brandes, then run the same
// computation distributed over a simulated 4-rank machine and print the
// measured communication costs.
//
//   $ ./example_quickstart
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/brandes.hpp"
#include "graph/generators.hpp"
#include "mfbc/mfbc_dist.hpp"
#include "mfbc/mfbc_seq.hpp"
#include "support/strutil.hpp"

int main() {
  using namespace mfbc;

  // A small scale-free graph: 1024 vertices, average degree 8.
  graph::RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  graph::Graph g = graph::rmat(params, /*seed=*/1);
  std::printf("graph: n=%lld m=%lld avg_degree=%.1f\n",
              static_cast<long long>(g.n()), static_cast<long long>(g.m()),
              g.avg_degree());

  // 1. Sequential MFBC (Algorithms 1-3 of the paper).
  core::MfbcOptions opts;
  opts.batch_size = 128;
  std::vector<double> bc = core::mfbc(g, opts);

  // 2. Cross-check against classic serial Brandes.
  std::vector<double> ref = baseline::brandes(g);
  double max_err = 0;
  for (std::size_t v = 0; v < bc.size(); ++v) {
    max_err = std::max(max_err, std::abs(bc[v] - ref[v]));
  }
  std::printf("max |MFBC - Brandes| = %.2e\n", max_err);

  // 3. Top-5 most central vertices.
  std::vector<std::size_t> idx(bc.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + 5, idx.end(),
                    [&](std::size_t a, std::size_t b) { return bc[a] > bc[b]; });
  std::printf("top-5 central vertices:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  v%-6zu  lambda = %.1f\n", idx[static_cast<std::size_t>(i)],
                bc[idx[static_cast<std::size_t>(i)]]);
  }

  // 4. The same computation on a simulated 4-rank machine (CTF-MFBC mode:
  //    the data layout of every multiplication is autotuned).
  sim::Sim sim(4);
  core::DistMfbc engine(sim, g);
  core::DistMfbcOptions dopts;
  dopts.batch_size = 128;
  core::DistMfbcStats stats;
  std::vector<double> dbc = engine.run(dopts, &stats);
  double dist_err = 0;
  for (std::size_t v = 0; v < bc.size(); ++v) {
    dist_err = std::max(dist_err, std::abs(dbc[v] - ref[v]));
  }
  const sim::Cost cost = sim.ledger().critical();
  std::printf("distributed run (p=4): max err %.2e, critical path %s, "
              "%.0f messages, modelled time %.3fs\n",
              dist_err, human_bytes(cost.words * 8).c_str(), cost.msgs,
              cost.total_seconds());
  std::printf("plans used:");
  for (const auto& p : stats.plans_used) std::printf(" %s", p.c_str());
  std::printf("\n");
  return max_err < 1e-6 && dist_err < 1e-6 ? 0 : 1;
}
