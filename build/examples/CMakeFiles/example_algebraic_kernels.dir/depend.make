# Empty dependencies file for example_algebraic_kernels.
# This may be replaced when dependencies are built.
