file(REMOVE_RECURSE
  "CMakeFiles/example_algebraic_kernels.dir/algebraic_kernels.cpp.o"
  "CMakeFiles/example_algebraic_kernels.dir/algebraic_kernels.cpp.o.d"
  "example_algebraic_kernels"
  "example_algebraic_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_algebraic_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
