file(REMOVE_RECURSE
  "CMakeFiles/example_social_ranking.dir/social_ranking.cpp.o"
  "CMakeFiles/example_social_ranking.dir/social_ranking.cpp.o.d"
  "example_social_ranking"
  "example_social_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
