file(REMOVE_RECURSE
  "CMakeFiles/example_comm_planner.dir/comm_planner.cpp.o"
  "CMakeFiles/example_comm_planner.dir/comm_planner.cpp.o.d"
  "example_comm_planner"
  "example_comm_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_comm_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
