# Empty compiler generated dependencies file for example_comm_planner.
# This may be replaced when dependencies are built.
