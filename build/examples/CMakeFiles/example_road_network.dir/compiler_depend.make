# Empty compiler generated dependencies file for example_road_network.
# This may be replaced when dependencies are built.
