# Empty compiler generated dependencies file for bench_fig2b_vertex_weak.
# This may be replaced when dependencies are built.
