# Empty dependencies file for bench_spgemm_variants.
# This may be replaced when dependencies are built.
