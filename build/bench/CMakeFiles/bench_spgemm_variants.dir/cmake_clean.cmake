file(REMOVE_RECURSE
  "CMakeFiles/bench_spgemm_variants.dir/bench_spgemm_variants.cpp.o"
  "CMakeFiles/bench_spgemm_variants.dir/bench_spgemm_variants.cpp.o.d"
  "bench_spgemm_variants"
  "bench_spgemm_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spgemm_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
