file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_machine.dir/bench_ablate_machine.cpp.o"
  "CMakeFiles/bench_ablate_machine.dir/bench_ablate_machine.cpp.o.d"
  "bench_ablate_machine"
  "bench_ablate_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
