# Empty compiler generated dependencies file for bench_ablate_machine.
# This may be replaced when dependencies are built.
