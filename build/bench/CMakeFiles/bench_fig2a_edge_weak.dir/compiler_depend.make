# Empty compiler generated dependencies file for bench_fig2a_edge_weak.
# This may be replaced when dependencies are built.
