file(REMOVE_RECURSE
  "CMakeFiles/bench_approx_quality.dir/bench_approx_quality.cpp.o"
  "CMakeFiles/bench_approx_quality.dir/bench_approx_quality.cpp.o.d"
  "bench_approx_quality"
  "bench_approx_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
