file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_replication.dir/bench_ablate_replication.cpp.o"
  "CMakeFiles/bench_ablate_replication.dir/bench_ablate_replication.cpp.o.d"
  "bench_ablate_replication"
  "bench_ablate_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
