# Empty compiler generated dependencies file for bench_ablate_replication.
# This may be replaced when dependencies are built.
