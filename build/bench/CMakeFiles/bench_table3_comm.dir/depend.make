# Empty dependencies file for bench_table3_comm.
# This may be replaced when dependencies are built.
