# Empty dependencies file for bench_thm51_costcheck.
# This may be replaced when dependencies are built.
