file(REMOVE_RECURSE
  "CMakeFiles/bench_thm51_costcheck.dir/bench_thm51_costcheck.cpp.o"
  "CMakeFiles/bench_thm51_costcheck.dir/bench_thm51_costcheck.cpp.o.d"
  "bench_thm51_costcheck"
  "bench_thm51_costcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm51_costcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
