# Empty compiler generated dependencies file for bench_ablate_frontier.
# This may be replaced when dependencies are built.
