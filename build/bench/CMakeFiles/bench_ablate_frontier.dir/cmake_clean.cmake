file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_frontier.dir/bench_ablate_frontier.cpp.o"
  "CMakeFiles/bench_ablate_frontier.dir/bench_ablate_frontier.cpp.o.d"
  "bench_ablate_frontier"
  "bench_ablate_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
