# Empty dependencies file for bench_ablate_batch.
# This may be replaced when dependencies are built.
