file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_batch.dir/bench_ablate_batch.cpp.o"
  "CMakeFiles/bench_ablate_batch.dir/bench_ablate_batch.cpp.o.d"
  "bench_ablate_batch"
  "bench_ablate_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
