# Empty dependencies file for bench_fig1c_rmat.
# This may be replaced when dependencies are built.
