file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1c_rmat.dir/bench_fig1c_rmat.cpp.o"
  "CMakeFiles/bench_fig1c_rmat.dir/bench_fig1c_rmat.cpp.o.d"
  "bench_fig1c_rmat"
  "bench_fig1c_rmat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1c_rmat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
