# Empty compiler generated dependencies file for bench_fig1_strong_real.
# This may be replaced when dependencies are built.
