file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_strong_real.dir/bench_fig1_strong_real.cpp.o"
  "CMakeFiles/bench_fig1_strong_real.dir/bench_fig1_strong_real.cpp.o.d"
  "bench_fig1_strong_real"
  "bench_fig1_strong_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_strong_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
