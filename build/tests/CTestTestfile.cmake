# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mfbc_tests[1]_include.cmake")
add_test(cli_bc_sequential "/root/repo/build/tools/mfbc" "--er" "300,900" "--top" "3")
set_tests_properties(cli_bc_sequential PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bc_distributed_ca "/root/repo/build/tools/mfbc" "--rmat" "8,4" "--ranks" "4" "--mode" "ca" "--c" "4" "--approx" "32" "--top" "3")
set_tests_properties(cli_bc_distributed_ca PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bc_combblas "/root/repo/build/tools/mfbc" "--er" "200,800" "--algo" "combblas" "--ranks" "4" "--approx" "16")
set_tests_properties(cli_bc_combblas PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bc_brandes "/root/repo/build/tools/mfbc" "--er" "200,600" "--algo" "brandes" "--top" "5")
set_tests_properties(cli_bc_brandes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_weighted "/root/repo/build/tools/mfbc" "--rmat" "8,4" "--weighted" "--approx" "32" "--top" "3")
set_tests_properties(cli_weighted PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;16;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_closeness "/root/repo/build/tools/mfbc" "--er" "200,800" "--metric" "closeness" "--top" "3")
set_tests_properties(cli_closeness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_components "/root/repo/build/tools/mfbc" "--er" "300,330" "--metric" "components")
set_tests_properties(cli_components PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_pagerank "/root/repo/build/tools/mfbc" "--er" "300,1200" "--metric" "pagerank" "--top" "3")
set_tests_properties(cli_pagerank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_maxflow "/root/repo/build/tools/mfbc" "--er" "100,400" "--weighted" "--metric" "maxflow" "--sink" "99")
set_tests_properties(cli_maxflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_flag "/root/repo/build/tools/mfbc" "--bogus")
set_tests_properties(cli_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_trace_tool "/root/repo/build/tools/mfbc_trace" "--rmat" "8,4" "--weighted" "--batch" "4")
set_tests_properties(cli_trace_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_model_tuner "sh" "-c" "/root/repo/build/tools/mfbc --tune model_smoke.txt &&                         /root/repo/build/tools/mfbc --er 200,600 --ranks 4                           --model model_smoke.txt --approx 8 --top 2")
set_tests_properties(cli_model_tuner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
