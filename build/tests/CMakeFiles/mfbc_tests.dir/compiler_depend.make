# Empty compiler generated dependencies file for mfbc_tests.
# This may be replaced when dependencies are built.
