
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_algebra.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_algebra.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_algebra.cpp.o.d"
  "/root/repo/tests/test_approx.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_approx.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_approx.cpp.o.d"
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_autotune_quality.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_autotune_quality.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_autotune_quality.cpp.o.d"
  "/root/repo/tests/test_batch_state.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_batch_state.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_batch_state.cpp.o.d"
  "/root/repo/tests/test_benchsupport.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_benchsupport.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_benchsupport.cpp.o.d"
  "/root/repo/tests/test_brandes.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_brandes.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_brandes.cpp.o.d"
  "/root/repo/tests/test_combblas.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_combblas.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_combblas.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_ctfx.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_ctfx.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_ctfx.cpp.o.d"
  "/root/repo/tests/test_ctfx_dist.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_ctfx_dist.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_ctfx_dist.cpp.o.d"
  "/root/repo/tests/test_ddense.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_ddense.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_ddense.cpp.o.d"
  "/root/repo/tests/test_dmatrix.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_dmatrix.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_dmatrix.cpp.o.d"
  "/root/repo/tests/test_fuzz_end_to_end.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_fuzz_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_fuzz_end_to_end.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_io_fuzz.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_io_fuzz.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_io_fuzz.cpp.o.d"
  "/root/repo/tests/test_maxflow.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_maxflow.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_maxflow.cpp.o.d"
  "/root/repo/tests/test_mfbc_dist.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_mfbc_dist.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_mfbc_dist.cpp.o.d"
  "/root/repo/tests/test_mfbc_seq.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_mfbc_seq.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_mfbc_seq.cpp.o.d"
  "/root/repo/tests/test_more_generators.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_more_generators.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_more_generators.cpp.o.d"
  "/root/repo/tests/test_pagerank.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_pagerank.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_pagerank.cpp.o.d"
  "/root/repo/tests/test_procgrid.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_procgrid.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_procgrid.cpp.o.d"
  "/root/repo/tests/test_ranking.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_ranking.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_ranking.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_sparse.cpp.o.d"
  "/root/repo/tests/test_spgemm_dist.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_spgemm_dist.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_spgemm_dist.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_triangles.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_triangles.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_triangles.cpp.o.d"
  "/root/repo/tests/test_tuner.cpp" "tests/CMakeFiles/mfbc_tests.dir/test_tuner.cpp.o" "gcc" "tests/CMakeFiles/mfbc_tests.dir/test_tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mfbc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
