file(REMOVE_RECURSE
  "libmfbc.a"
)
