# Empty dependencies file for mfbc.
# This may be replaced when dependencies are built.
