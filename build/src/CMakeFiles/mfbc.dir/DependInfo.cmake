
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dijkstra_algebraic.cpp" "src/CMakeFiles/mfbc.dir/apps/dijkstra_algebraic.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/apps/dijkstra_algebraic.cpp.o.d"
  "/root/repo/src/apps/maxflow.cpp" "src/CMakeFiles/mfbc.dir/apps/maxflow.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/apps/maxflow.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/CMakeFiles/mfbc.dir/apps/pagerank.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/apps/pagerank.cpp.o.d"
  "/root/repo/src/apps/traversal.cpp" "src/CMakeFiles/mfbc.dir/apps/traversal.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/apps/traversal.cpp.o.d"
  "/root/repo/src/apps/traversal_dist.cpp" "src/CMakeFiles/mfbc.dir/apps/traversal_dist.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/apps/traversal_dist.cpp.o.d"
  "/root/repo/src/apps/triangles.cpp" "src/CMakeFiles/mfbc.dir/apps/triangles.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/apps/triangles.cpp.o.d"
  "/root/repo/src/baseline/brandes.cpp" "src/CMakeFiles/mfbc.dir/baseline/brandes.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/baseline/brandes.cpp.o.d"
  "/root/repo/src/baseline/combblas_bc.cpp" "src/CMakeFiles/mfbc.dir/baseline/combblas_bc.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/baseline/combblas_bc.cpp.o.d"
  "/root/repo/src/benchsupport/harness.cpp" "src/CMakeFiles/mfbc.dir/benchsupport/harness.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/benchsupport/harness.cpp.o.d"
  "/root/repo/src/benchsupport/table.cpp" "src/CMakeFiles/mfbc.dir/benchsupport/table.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/benchsupport/table.cpp.o.d"
  "/root/repo/src/dist/autotune.cpp" "src/CMakeFiles/mfbc.dir/dist/autotune.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/dist/autotune.cpp.o.d"
  "/root/repo/src/dist/cost_model.cpp" "src/CMakeFiles/mfbc.dir/dist/cost_model.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/dist/cost_model.cpp.o.d"
  "/root/repo/src/dist/procgrid.cpp" "src/CMakeFiles/mfbc.dir/dist/procgrid.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/dist/procgrid.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/mfbc.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/mfbc.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/mfbc.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/mfbc.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/graph/metrics.cpp.o.d"
  "/root/repo/src/graph/more_generators.cpp" "src/CMakeFiles/mfbc.dir/graph/more_generators.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/graph/more_generators.cpp.o.d"
  "/root/repo/src/graph/prep.cpp" "src/CMakeFiles/mfbc.dir/graph/prep.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/graph/prep.cpp.o.d"
  "/root/repo/src/graph/snap_proxy.cpp" "src/CMakeFiles/mfbc.dir/graph/snap_proxy.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/graph/snap_proxy.cpp.o.d"
  "/root/repo/src/mfbc/approx.cpp" "src/CMakeFiles/mfbc.dir/mfbc/approx.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/mfbc/approx.cpp.o.d"
  "/root/repo/src/mfbc/mfbc_dist.cpp" "src/CMakeFiles/mfbc.dir/mfbc/mfbc_dist.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/mfbc/mfbc_dist.cpp.o.d"
  "/root/repo/src/mfbc/mfbc_seq.cpp" "src/CMakeFiles/mfbc.dir/mfbc/mfbc_seq.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/mfbc/mfbc_seq.cpp.o.d"
  "/root/repo/src/mfbc/ranking.cpp" "src/CMakeFiles/mfbc.dir/mfbc/ranking.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/mfbc/ranking.cpp.o.d"
  "/root/repo/src/mfbc/teps.cpp" "src/CMakeFiles/mfbc.dir/mfbc/teps.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/mfbc/teps.cpp.o.d"
  "/root/repo/src/sim/comm.cpp" "src/CMakeFiles/mfbc.dir/sim/comm.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/sim/comm.cpp.o.d"
  "/root/repo/src/sim/ledger.cpp" "src/CMakeFiles/mfbc.dir/sim/ledger.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/sim/ledger.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/mfbc.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/tuner.cpp" "src/CMakeFiles/mfbc.dir/sim/tuner.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/sim/tuner.cpp.o.d"
  "/root/repo/src/support/error.cpp" "src/CMakeFiles/mfbc.dir/support/error.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/support/error.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/mfbc.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/strutil.cpp" "src/CMakeFiles/mfbc.dir/support/strutil.cpp.o" "gcc" "src/CMakeFiles/mfbc.dir/support/strutil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
