# Empty dependencies file for mfbc_cli.
# This may be replaced when dependencies are built.
