file(REMOVE_RECURSE
  "CMakeFiles/mfbc_cli.dir/mfbc_cli.cpp.o"
  "CMakeFiles/mfbc_cli.dir/mfbc_cli.cpp.o.d"
  "mfbc"
  "mfbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfbc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
