file(REMOVE_RECURSE
  "CMakeFiles/mfbc_trace.dir/mfbc_trace.cpp.o"
  "CMakeFiles/mfbc_trace.dir/mfbc_trace.cpp.o.d"
  "mfbc_trace"
  "mfbc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfbc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
