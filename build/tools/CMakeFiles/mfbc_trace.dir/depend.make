# Empty dependencies file for mfbc_trace.
# This may be replaced when dependencies are built.
